"""Vectorized real-time synthesis (the paper's Section VII future work).

The reference :class:`~repro.core.synthesis.Synthesizer` keeps one Python
object per live stream; Table V shows synthesis dominating the per-timestamp
cost.  This module provides :class:`VectorizedSynthesizer` — a drop-in
replacement that advances *all* live streams with array operations:

* per-cell movement distributions are compiled once per model version into
  padded ``(|C|, 9)`` probability / destination matrices;
* each timestamp draws one uniform vector for quits and one for moves, and
  resolves destinations with a row-wise inverse-CDF lookup;
* trajectories are materialised into :class:`CellTrajectory` objects only
  when the run finishes.

The generative *distribution* is identical to the reference implementation
(property-tested in ``tests/core/test_fast_synthesis.py``); only the order
in which random variates are consumed differs, so per-seed outputs are not
bit-identical across the two engines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.exceptions import ConfigurationError
from repro.geo.trajectory import CellTrajectory
from repro.rng import RngLike, ensure_rng

_ABSENT = -1


class _CompiledModel:
    """Padded array view of a mobility model, rebuilt per model version."""

    def __init__(self, model: GlobalMobilityModel) -> None:
        space = model.space
        n = space.n_cells
        width = max(len(space.out_destinations(c)) for c in range(n))
        self.dest = np.full((n, width), 0, dtype=np.int64)
        self.cum_probs = np.ones((n, width), dtype=float)
        self.quit_raw = np.zeros(n, dtype=float)
        for cell in range(n):
            probs, quit = model.row_distribution(cell)
            dests = space.out_destinations(cell)
            total = probs.sum()
            norm = probs / total if total > 0 else np.full(len(dests), 1 / len(dests))
            cum = np.cumsum(norm)
            cum[-1] = 1.0  # guard against rounding
            self.dest[cell, : len(dests)] = dests
            self.dest[cell, len(dests):] = dests[-1]
            self.cum_probs[cell, : len(dests)] = cum
            self.cum_probs[cell, len(dests):] = 1.0
            self.quit_raw[cell] = quit
        self.version = model.version


class VectorizedSynthesizer:
    """Array-based synthesizer with the same contract as ``Synthesizer``.

    Parameters mirror :class:`~repro.core.synthesis.Synthesizer`.
    """

    _GROWTH = 1.5

    def __init__(
        self,
        model: GlobalMobilityModel,
        lam: float,
        enable_termination: bool = True,
        rng: RngLike = None,
        initial_capacity: int = 1024,
    ) -> None:
        if lam <= 0:
            raise ConfigurationError(f"lambda must be positive, got {lam}")
        self.model = model
        self.lam = float(lam)
        self.enable_termination = bool(enable_termination)
        self.rng = ensure_rng(rng)
        self._capacity = max(16, int(initial_capacity))
        self._horizon = 64
        self._buf = np.full((self._capacity, self._horizon), _ABSENT, dtype=np.int32)
        self._start = np.zeros(self._capacity, dtype=np.int64)
        self._length = np.zeros(self._capacity, dtype=np.int64)
        self._alive = np.zeros(self._capacity, dtype=bool)
        self._n = 0  # total streams ever created
        self._compiled: Optional[_CompiledModel] = None

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def n_live(self) -> int:
        return int(self._alive[: self._n].sum())

    @property
    def live_streams(self) -> list[CellTrajectory]:
        return [
            self._materialise(i)
            for i in np.flatnonzero(self._alive[: self._n])
        ]

    def all_trajectories(self) -> list[CellTrajectory]:
        """Every synthetic stream ever created."""
        return [self._materialise(i) for i in range(self._n)]

    def _materialise(self, i: int) -> CellTrajectory:
        cells = self._buf[i, : self._length[i]].tolist()
        traj = CellTrajectory(int(self._start[i]), cells, user_id=int(i))
        traj.terminated = not bool(self._alive[i])
        return traj

    # ------------------------------------------------------------------ #
    # capacity management
    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, extra_streams: int, t: int) -> None:
        need_rows = self._n + extra_streams
        if need_rows > self._capacity:
            new_cap = max(need_rows, int(self._capacity * self._GROWTH))
            grown = np.full((new_cap, self._horizon), _ABSENT, dtype=np.int32)
            grown[: self._capacity] = self._buf
            self._buf = grown
            for name in ("_start", "_length"):
                arr = getattr(self, name)
                grown_1d = np.zeros(new_cap, dtype=arr.dtype)
                grown_1d[: self._capacity] = arr
                setattr(self, name, grown_1d)
            alive = np.zeros(new_cap, dtype=bool)
            alive[: self._capacity] = self._alive
            self._alive = alive
            self._capacity = new_cap
        # Columns: longest stream length is bounded by t - min(start) + 1.
        need_cols = int((self._length[: self._n].max(initial=0)) + 2)
        need_cols = max(need_cols, 2)
        if need_cols > self._horizon:
            new_h = max(need_cols, int(self._horizon * self._GROWTH))
            grown = np.full((self._capacity, new_h), _ABSENT, dtype=np.int32)
            grown[:, : self._horizon] = self._buf
            self._buf = grown
            self._horizon = new_h

    # ------------------------------------------------------------------ #
    # stream creation
    # ------------------------------------------------------------------ #
    def _spawn_cells(self, t: int, cells: np.ndarray) -> None:
        count = cells.size
        if count == 0:
            return
        self._ensure_capacity(count, t)
        rows = np.arange(self._n, self._n + count)
        self._buf[rows, 0] = cells
        self._start[rows] = t
        self._length[rows] = 1
        self._alive[rows] = True
        self._n += count

    def spawn_from_entering(self, t: int, count: int) -> None:
        """Fresh streams with start cells sampled from E."""
        if count <= 0:
            return
        probs = self.model.enter_distribution()
        self._spawn_cells(t, self.rng.choice(probs.size, size=count, p=probs))

    def spawn_uniform(self, t: int, count: int) -> None:
        """Uniformly seeded streams (NoEQ / baseline initialisation)."""
        if count <= 0:
            return
        self._spawn_cells(
            t, self.rng.integers(0, self.model.space.n_cells, size=count)
        )

    def spawn_from_distribution(self, t: int, count: int, probs: np.ndarray) -> None:
        """Streams seeded from an explicit start-cell distribution."""
        if count <= 0:
            return
        probs = np.asarray(probs, dtype=float)
        if probs.size != self.model.space.n_cells:
            raise ConfigurationError(
                f"expected {self.model.space.n_cells} start-cell probabilities, "
                f"got {probs.size}"
            )
        total = probs.sum()
        if total <= 0:
            self.spawn_uniform(t, count)
            return
        self._spawn_cells(
            t, self.rng.choice(probs.size, size=count, p=probs / total)
        )

    # ------------------------------------------------------------------ #
    # the vectorized generative step
    # ------------------------------------------------------------------ #
    def _compile(self) -> _CompiledModel:
        if self._compiled is None or self._compiled.version != self.model.version:
            self._compiled = _CompiledModel(self.model)
        return self._compiled

    def step(self, t: int, target_size: Optional[int] = None) -> None:
        """Advance all live streams to ``t``; optionally adjust the size."""
        self._generate(t)
        if target_size is not None:
            self._adjust_size(t, int(target_size))

    def _generate(self, t: int) -> None:
        rows = np.flatnonzero(self._alive[: self._n])
        if rows.size == 0:
            return
        self._ensure_capacity(0, t)
        compiled = self._compile()
        cells = self._buf[rows, self._length[rows] - 1].astype(np.int64)

        if self.enable_termination:
            quit_probs = np.minimum(
                self._length[rows] / self.lam * compiled.quit_raw[cells], 1.0
            )
            quit_mask = self.rng.random(rows.size) < quit_probs
        else:
            quit_mask = np.zeros(rows.size, dtype=bool)
        if quit_mask.any():
            self._alive[rows[quit_mask]] = False
        stay_rows = rows[~quit_mask]
        if stay_rows.size == 0:
            return
        stay_cells = cells[~quit_mask]
        draws = self.rng.random(stay_rows.size)
        # Row-wise inverse-CDF: index of the first cum-prob exceeding u.
        dest_idx = (draws[:, None] > compiled.cum_probs[stay_cells]).sum(axis=1)
        new_cells = compiled.dest[stay_cells, dest_idx]
        self._buf[stay_rows, self._length[stay_rows]] = new_cells
        self._length[stay_rows] += 1

    def _adjust_size(self, t: int, target: int) -> None:
        if target < 0:
            raise ConfigurationError(f"target size must be >= 0, got {target}")
        live_rows = np.flatnonzero(self._alive[: self._n])
        deficit = target - live_rows.size
        if deficit > 0:
            self.spawn_from_entering(t, deficit)
            return
        if deficit == 0 or not self.enable_termination:
            return
        n_drop = -deficit
        quit_dist = self.model.quit_distribution()
        last_cells = self._buf[live_rows, self._length[live_rows] - 1]
        weights = quit_dist[last_cells] + 1e-9
        weights = weights / weights.sum()
        drop = self.rng.choice(live_rows.size, size=n_drop, replace=False, p=weights)
        drop_rows = live_rows[np.atleast_1d(drop)]
        # Withdraw the cell generated for t: quitting means the final
        # report was at t-1 (matches the reference synthesizer).
        fresh = (self._start[drop_rows] + self._length[drop_rows] - 1 == t) & (
            self._length[drop_rows] > 1
        )
        shrink = drop_rows[fresh]
        self._buf[shrink, self._length[shrink] - 1] = _ABSENT
        self._length[shrink] -= 1
        self._alive[drop_rows] = False
