"""Vectorized, incrementally compiled, shard-parallel real-time synthesis.

The reference :class:`~repro.core.synthesis.Synthesizer` keeps one Python
object per live stream; Table V shows synthesis dominating the per-timestamp
cost.  This module provides :class:`VectorizedSynthesizer` — a drop-in
replacement that advances *all* live streams with array operations:

* per-cell movement distributions are compiled into padded ``(|C|, width)``
  probability / destination matrices.  Compilation is **incremental**: the
  mobility model journals which origin rows each DMU round dirtied, and
  :class:`_CompiledModel` re-assembles exactly those rows with vectorized
  padded-row gathers — there is no per-cell Python loop even on a full
  rebuild (``compile_mode="full"``); the seed implementation's per-cell
  loop survives as the ``"full-loop"`` reference, mirroring
  ``oracle_mode="exact-loop"``;
* each timestamp draws one uniform vector for quits and one for moves, and
  resolves destinations with a row-wise inverse-CDF lookup;
* live streams can be partitioned into ``synthesis_shards`` slabs advanced
  concurrently on a thread pool (the heavy numpy kernels release the GIL);
  slab results are merged back by array concatenation, so the store is
  written from one thread only;
* trajectories live in a :class:`~repro.core.trajectory_store
  .TrajectoryStore`; ``CellTrajectory`` objects are materialised only at
  API boundaries.

The generative *distribution* is identical to the reference implementation
(property-tested in ``tests/core/test_fast_synthesis.py``); only the order
in which random variates are consumed differs, so per-seed outputs are not
bit-identical across the two engines (nor across shard counts).  For a
fixed seed and shard count the engine is fully deterministic.
``incremental`` and ``full`` compile modes share one assembly routine and
are bit-identical by construction; ``full-loop`` repeats the same
arithmetic per cell (its row sums reduce in a different order, so equality
is ulp-exact in practice — pinned by the test suite — rather than
structural).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.trajectory_store import TrajectoryStore
from repro.exceptions import ConfigurationError
from repro.geo.trajectory import CellTrajectory
from repro.rng import RngLike, ensure_rng

#: Selectable compilation strategies (RetraSynConfig.compile_mode).
COMPILE_MODES = ("incremental", "full", "full-loop")

#: Selectable slab executors (RetraSynConfig.synthesis_executor).
SYNTHESIS_EXECUTORS = ("thread", "process")

#: Below this many live streams a shard round trip costs more than it saves.
_MIN_STREAMS_PER_SHARD = 2048


def _advance_slab_remote(args: tuple) -> tuple:
    """Process-executor twin of :meth:`VectorizedSynthesizer._advance_slab`.

    Runs in a worker process, so it receives slab-*local* arrays (the
    parent gathers ``cum_probs`` / ``dest`` / ``quit_raw`` rows for the
    slab's current cells) plus the slab's generator, and returns the
    generator with its advanced state so the parent can thread it into
    the next round.  The draw sequence — one uniform vector for quits,
    one for moves, the move draw skipped when nothing stays — is exactly
    the thread path's, which makes the two executors bit-identical.
    """
    lam, enable_termination, lengths, cum, dest, quit_raw, rng = args
    n = cum.shape[0]
    if enable_termination:
        quit_probs = np.minimum(lengths / lam * quit_raw, 1.0)
        quit_mask = rng.random(n) < quit_probs
    else:
        quit_mask = np.zeros(n, dtype=bool)
    stay = ~quit_mask
    n_stay = int(stay.sum())
    if n_stay == 0:
        return quit_mask, np.empty(0, dtype=np.int64), rng
    draws = rng.random(n_stay)
    dest_idx = (draws[:, None] > cum[stay]).sum(axis=1)
    new_cells = dest[stay][np.arange(n_stay), dest_idx]
    return quit_mask, new_cells, rng


class _CompiledModel:
    """Padded array view of a mobility model, kept current per row.

    ``dest`` is the space's static padded destination matrix (shared,
    read-only); ``cum_probs`` holds the per-origin inverse-CDF over
    destinations (conditional on not quitting) and ``quit_raw`` the raw
    per-origin quit probability of Eq. 6.
    """

    def __init__(self, model: GlobalMobilityModel) -> None:
        space = model.space
        out_pad, dest_pad, deg = space.padded_out_structure()
        self._out_pad = out_pad
        self._deg = deg
        self._mask = np.arange(out_pad.shape[1]) < deg[:, None]
        self.dest = dest_pad
        self.cum_probs = np.empty(out_pad.shape, dtype=float)
        self.quit_raw = np.empty(space.n_cells, dtype=float)
        self._assemble(model, slice(None))
        self.version = model.version

    def _assemble(self, model: GlobalMobilityModel, rows) -> None:
        """Recompute ``cum_probs`` / ``quit_raw`` for the selected rows.

        ``rows`` is a row-index array or ``slice(None)``; either way the
        assembly is pure padded gathering — no per-cell iteration.
        """
        space = model.space
        f = model.clipped_frequencies()
        mask = self._mask[rows]
        deg = self._deg[rows]
        uniform = mask / deg[:, None]
        moves = f[self._out_pad[rows]] * mask
        if space.include_eq:
            quit_mass = f[space.quit_indices][rows]
        else:
            quit_mass = np.zeros(deg.shape)
        # Two-stage normalisation in exactly the reference arithmetic
        # (row_distribution then probs/total in the compile loop), so all
        # compile modes produce bit-identical CDFs, not just ulp-close
        # ones: first Eq. 6 probabilities over the row denominator
        # (uniform for massless rows), then renormalise conditional on
        # not quitting (uniform again when all mass sits on quitting).
        denom = moves.sum(axis=1) + quit_mass
        has_mass = denom > 0.0
        probs = np.where(
            has_mass[:, None],
            moves / np.where(has_mass, denom, 1.0)[:, None],
            uniform,
        )
        total = probs.sum(axis=1)
        has_moves = total > 0.0
        norm = np.where(
            has_moves[:, None],
            probs / np.where(has_moves, total, 1.0)[:, None],
            uniform,
        )
        cum = np.cumsum(norm, axis=1)
        cum[~mask] = 1.0
        cum[np.arange(deg.size), deg - 1] = 1.0  # guard against rounding
        self.cum_probs[rows] = cum
        self.quit_raw[rows] = np.where(
            has_mass, quit_mass / np.where(has_mass, denom, 1.0), 0.0
        )

    def update(self, model: GlobalMobilityModel, mode: str) -> None:
        """Bring the compiled arrays up to ``model.version``.

        ``mode="incremental"`` re-assembles only the rows the model's
        dirty journal names; when provenance is unavailable (a full
        ``set_all``, or the journal was outrun) it degrades to the same
        vectorized full rebuild that ``mode="full"`` always performs.
        """
        if self.version == model.version:
            return
        if mode == "incremental":
            dirty = model.dirty_origins_since(self.version)
            if dirty is not None:
                if dirty.size:
                    self._assemble(model, dirty)
                self.version = model.version
                return
        self._assemble(model, slice(None))
        self.version = model.version

    @classmethod
    def reference(cls, model: GlobalMobilityModel) -> "_CompiledModel":
        """The seed implementation's per-cell compile loop (``full-loop``).

        Kept verbatim as the behavioural reference the vectorized assembly
        is property-tested against, and as the benchmark baseline for the
        synthesis-plane speedup gate.
        """
        space = model.space
        compiled = cls.__new__(cls)
        n = space.n_cells
        width = max(len(space.out_destinations(c)) for c in range(n))
        compiled.dest = np.full((n, width), 0, dtype=np.int64)
        compiled.cum_probs = np.ones((n, width), dtype=float)
        compiled.quit_raw = np.zeros(n, dtype=float)
        for cell in range(n):
            probs, quit = model.row_distribution(cell)
            dests = space.out_destinations(cell)
            total = probs.sum()
            norm = probs / total if total > 0 else np.full(len(dests), 1 / len(dests))
            cum = np.cumsum(norm)
            cum[-1] = 1.0  # guard against rounding
            compiled.dest[cell, : len(dests)] = dests
            compiled.dest[cell, len(dests):] = dests[-1]
            compiled.cum_probs[cell, : len(dests)] = cum
            compiled.cum_probs[cell, len(dests):] = 1.0
            compiled.quit_raw[cell] = quit
        compiled.version = model.version
        return compiled


class VectorizedSynthesizer:
    """Array-based synthesizer with the same contract as ``Synthesizer``.

    Parameters mirror :class:`~repro.core.synthesis.Synthesizer`, plus:

    compile_mode:
        ``"incremental"`` (default) recompiles only DMU-dirtied rows;
        ``"full"`` rebuilds every row (vectorized) per model version;
        ``"full-loop"`` keeps the seed per-cell compile loop as reference.
    synthesis_shards:
        Live streams are split into this many slabs, each advanced by its
        own rng and merged by concatenation.  ``1`` (default) keeps the
        single-threaded path, which consumes the main rng exactly like
        earlier releases.
    synthesis_executor:
        Where slabs run: ``"thread"`` (default) on a pool of threads (the
        heavy numpy kernels release the GIL), ``"process"`` on worker
        processes — the parent gathers each slab's model rows, ships them
        with the slab rng, and threads the returned rng state back, so
        both executors are bit-identical for a fixed seed and shard
        count.  Processes pay a per-step shipping cost and win only when
        slab compute dominates the interpreter's share of the step.
    """

    def __init__(
        self,
        model: GlobalMobilityModel,
        lam: float,
        enable_termination: bool = True,
        rng: RngLike = None,
        initial_capacity: int = 1024,
        compile_mode: str = "incremental",
        synthesis_shards: int = 1,
        synthesis_executor: str = "thread",
    ) -> None:
        if lam <= 0:
            raise ConfigurationError(f"lambda must be positive, got {lam}")
        if compile_mode not in COMPILE_MODES:
            raise ConfigurationError(
                f"compile_mode must be one of {COMPILE_MODES}, "
                f"got {compile_mode!r}"
            )
        if synthesis_shards < 1:
            raise ConfigurationError(
                f"synthesis_shards must be >= 1, got {synthesis_shards}"
            )
        if synthesis_executor not in SYNTHESIS_EXECUTORS:
            raise ConfigurationError(
                f"synthesis_executor must be one of {SYNTHESIS_EXECUTORS}, "
                f"got {synthesis_executor!r}"
            )
        self.model = model
        self.lam = float(lam)
        self.enable_termination = bool(enable_termination)
        self.rng = ensure_rng(rng)
        self.compile_mode = compile_mode
        self.synthesis_shards = int(synthesis_shards)
        self.synthesis_executor = synthesis_executor
        self.store = TrajectoryStore(initial_capacity=max(16, int(initial_capacity)))
        self._compiled: Optional[_CompiledModel] = None
        self._shard_rngs: Optional[list[np.random.Generator]] = None
        if self.synthesis_shards > 1:
            seeds = self.rng.integers(0, 2**63 - 1, size=self.synthesis_shards)
            self._shard_rngs = [np.random.default_rng(int(s)) for s in seeds]
        self._pool = None  # lazy ThreadPoolExecutor; never pickled

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def n_live(self) -> int:
        return self.store.n_live

    @property
    def live_streams(self) -> list[CellTrajectory]:
        return self.store.live_views()

    def all_trajectories(self) -> list[CellTrajectory]:
        """Every synthetic stream ever created."""
        return self.store.all_views()

    def all_rows(self) -> np.ndarray:
        """Store rows of every stream, in creation order."""
        return np.arange(self.store.n_total, dtype=np.int64)

    def live_last_cells(self) -> np.ndarray:
        """Current cell of every live stream — no object materialisation."""
        return self.store.last_cells(self.store.live_rows())

    # ------------------------------------------------------------------ #
    # stream creation
    # ------------------------------------------------------------------ #
    def spawn_from_entering(self, t: int, count: int) -> None:
        """Fresh streams with start cells sampled from E."""
        if count <= 0:
            return
        probs = self.model.enter_distribution()
        self.store.append_streams(
            t, self.rng.choice(probs.size, size=count, p=probs)
        )

    def spawn_uniform(self, t: int, count: int) -> None:
        """Uniformly seeded streams (NoEQ / baseline initialisation)."""
        if count <= 0:
            return
        self.store.append_streams(
            t, self.rng.integers(0, self.model.space.n_cells, size=count)
        )

    def spawn_from_distribution(self, t: int, count: int, probs: np.ndarray) -> None:
        """Streams seeded from an explicit start-cell distribution."""
        if count <= 0:
            return
        probs = np.asarray(probs, dtype=float)
        if probs.size != self.model.space.n_cells:
            raise ConfigurationError(
                f"expected {self.model.space.n_cells} start-cell probabilities, "
                f"got {probs.size}"
            )
        total = probs.sum()
        if total <= 0:
            self.spawn_uniform(t, count)
            return
        self.store.append_streams(
            t, self.rng.choice(probs.size, size=count, p=probs / total)
        )

    # ------------------------------------------------------------------ #
    # the vectorized generative step
    # ------------------------------------------------------------------ #
    def _compile(self) -> _CompiledModel:
        if self.compile_mode == "full-loop":
            if self._compiled is None or self._compiled.version != self.model.version:
                self._compiled = _CompiledModel.reference(self.model)
        elif self._compiled is None:
            self._compiled = _CompiledModel(self.model)
        else:
            self._compiled.update(self.model, self.compile_mode)
        return self._compiled

    def step(self, t: int, target_size: Optional[int] = None) -> None:
        """Advance all live streams to ``t``; optionally adjust the size."""
        self._generate(t)
        if target_size is not None:
            self._adjust_size(t, int(target_size))

    def _advance_slab(
        self,
        compiled: _CompiledModel,
        rows: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Quit/move draws for one slab of live rows (read-only on the store).

        Returns ``(quit_rows, stay_rows, new_cells)``; the caller merges
        slabs and performs all store writes, so concurrent slabs never
        mutate shared state.
        """
        cells = self.store.last_cells(rows)
        if self.enable_termination:
            quit_probs = np.minimum(
                self.store.lengths_of(rows) / self.lam * compiled.quit_raw[cells],
                1.0,
            )
            quit_mask = rng.random(rows.size) < quit_probs
        else:
            quit_mask = np.zeros(rows.size, dtype=bool)
        stay_rows = rows[~quit_mask]
        if stay_rows.size == 0:
            return rows[quit_mask], stay_rows, np.empty(0, dtype=np.int64)
        stay_cells = cells[~quit_mask]
        draws = rng.random(stay_rows.size)
        # Row-wise inverse-CDF: index of the first cum-prob exceeding u.
        dest_idx = (draws[:, None] > compiled.cum_probs[stay_cells]).sum(axis=1)
        new_cells = compiled.dest[stay_cells, dest_idx]
        return rows[quit_mask], stay_rows, new_cells

    def _executor(self):
        if self._pool is None:
            if self.synthesis_executor == "process":
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.synthesis_shards
                )
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.synthesis_shards,
                    thread_name_prefix="synthesis-shard",
                )
        return self._pool

    def _generate_sharded_process(
        self, compiled: _CompiledModel, slabs: list
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance slabs on the process pool; returns merged results.

        Workers cannot see the store or the compiled model, so the parent
        gathers each slab's rows — current cells' CDF/destination rows,
        quit masses, lengths — and ships them with the slab rng; the
        advanced rng comes back and replaces the parent's copy, keeping
        the per-slab draw sequence identical to the thread executor's.
        """
        futures = []
        for i, slab in enumerate(slabs):
            cells = self.store.last_cells(slab)
            lengths = (
                self.store.lengths_of(slab) if self.enable_termination else None
            )
            futures.append(
                self._executor().submit(
                    _advance_slab_remote,
                    (
                        self.lam,
                        self.enable_termination,
                        lengths,
                        compiled.cum_probs[cells],
                        compiled.dest[cells],
                        compiled.quit_raw[cells],
                        self._shard_rngs[i],
                    ),
                )
            )
        quit_parts, stay_parts, cell_parts = [], [], []
        for i, (slab, future) in enumerate(zip(slabs, futures)):
            quit_mask, new_cells, rng = future.result()
            self._shard_rngs[i] = rng
            quit_parts.append(slab[quit_mask])
            stay_parts.append(slab[~quit_mask])
            cell_parts.append(new_cells)
        return (
            np.concatenate(quit_parts),
            np.concatenate(stay_parts),
            np.concatenate(cell_parts),
        )

    def _generate(self, t: int) -> None:
        rows = self.store.live_rows()
        if rows.size == 0:
            return
        compiled = self._compile()
        use_shards = (
            self.synthesis_shards > 1
            and rows.size >= self.synthesis_shards * _MIN_STREAMS_PER_SHARD
        )
        if use_shards and self.synthesis_executor == "process":
            slabs = np.array_split(rows, self.synthesis_shards)
            quit_rows, stay_rows, new_cells = self._generate_sharded_process(
                compiled, slabs
            )
        elif use_shards:
            slabs = np.array_split(rows, self.synthesis_shards)
            futures = [
                self._executor().submit(self._advance_slab, compiled, slab, rng)
                for slab, rng in zip(slabs, self._shard_rngs)
            ]
            parts = [f.result() for f in futures]
            quit_rows = np.concatenate([p[0] for p in parts])
            stay_rows = np.concatenate([p[1] for p in parts])
            new_cells = np.concatenate([p[2] for p in parts])
        else:
            rng = self._shard_rngs[0] if self._shard_rngs else self.rng
            quit_rows, stay_rows, new_cells = self._advance_slab(
                compiled, rows, rng
            )
        self.store.kill(quit_rows)
        self.store.append_cells(stay_rows, new_cells)

    def _adjust_size(self, t: int, target: int) -> None:
        if target < 0:
            raise ConfigurationError(f"target size must be >= 0, got {target}")
        live_rows = self.store.live_rows()
        deficit = target - live_rows.size
        if deficit > 0:
            self.spawn_from_entering(t, deficit)
            return
        if deficit == 0 or not self.enable_termination:
            return
        n_drop = -deficit
        quit_dist = self.model.quit_distribution()
        weights = quit_dist[self.store.last_cells(live_rows)] + 1e-9
        weights = weights / weights.sum()
        drop = self.rng.choice(live_rows.size, size=n_drop, replace=False, p=weights)
        drop_rows = live_rows[np.atleast_1d(drop)]
        # Withdraw the cell generated for t: quitting means the final
        # report was at t-1 (matches the reference synthesizer).
        lengths = self.store.lengths_of(drop_rows)
        fresh = (self.store.births_of(drop_rows) + lengths - 1 == t) & (lengths > 1)
        self.store.pop_last(drop_rows[fresh])
        self.store.kill(drop_rows)

    # ------------------------------------------------------------------ #
    # lifecycle / pickling (checkpoints)
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the slab thread pool (rebuilt lazily if stepped again)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self) -> dict:
        # The thread pool is process-local machinery; everything else —
        # store, compiled model, shard rngs — is plain picklable state.
        state = dict(self.__dict__)
        state["_pool"] = None
        return state
