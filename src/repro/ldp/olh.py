"""Optimized Local Hashing (OLH).

Each user hashes their value into a small domain ``g = round(e^ε) + 1`` with a
per-user universal hash, then runs GRR over the hashed domain.  OLH matches
OUE's asymptotic variance while reporting only ``O(log g)`` bits.  It is
included for completeness of the FO substrate; RetraSyn itself uses OUE.

The universal hash is ``h(v) = ((a*v + b) mod PRIME) mod g`` with per-user
random ``a, b`` — a textbook Carter–Wegman family that is pairwise
independent, which is sufficient for the unbiasedness argument.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ldp.freq_oracle import FrequencyOracle
from repro.rng import RngLike

_PRIME = 2_147_483_647  # 2^31 - 1, Mersenne prime


class OptimizedLocalHashing(FrequencyOracle):
    """OLH frequency oracle (Wang et al. 2017)."""

    def __init__(self, domain_size: int, epsilon: float, rng: RngLike = None) -> None:
        super().__init__(domain_size, epsilon, rng)
        e = np.exp(self.epsilon)
        self.g = max(2, int(round(e)) + 1)
        self._p = e / (e + self.g - 1.0)
        self._q = 1.0 / self.g  # Pr[random report hashes to any fixed bucket]

    def _hash(self, a: np.ndarray, b: np.ndarray, values: np.ndarray) -> np.ndarray:
        return ((a * values + b) % _PRIME) % self.g

    def collect(self, values: Sequence[int]) -> np.ndarray:
        arr = self._check_values(values)
        n = arr.size
        if n == 0:
            return np.zeros(self.domain_size)
        a = self.rng.integers(1, _PRIME, size=n, dtype=np.int64)
        b = self.rng.integers(0, _PRIME, size=n, dtype=np.int64)
        hashed = self._hash(a, b, arr)
        # GRR over the hashed domain.
        keep = self.rng.random(n) < self._p
        lies = (hashed + 1 + self.rng.integers(0, self.g - 1, size=n)) % self.g
        reports = np.where(keep, hashed, lies)
        # Support counting: user i supports value v iff h_i(v) == report_i.
        # Vectorised over the domain (d columns, n rows).
        domain = np.arange(self.domain_size, dtype=np.int64)
        support = self._hash(a[:, None], b[:, None], domain[None, :]) == reports[:, None]
        counts = support.sum(axis=0).astype(float)
        p_star = self._p
        return (counts - n * self._q) / (p_star - self._q)

    def variance(self, n: int) -> float:
        if n <= 0:
            return float("inf")
        e = np.exp(self.epsilon)
        return float(4.0 * e / (n * (e - 1.0) ** 2))
