"""Generalized Randomized Response (GRR / direct encoding).

Each user reports the true value with probability ``p = e^ε / (e^ε + d − 1)``
and any other fixed value with probability ``q = 1 / (e^ε + d − 1)``.  GRR is
included as a reference protocol: it beats OUE for small domains
(``d < 3 e^ε + 2``) and provides an independent implementation to
cross-validate estimates in tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ldp.freq_oracle import FrequencyOracle
from repro.rng import RngLike


class GeneralizedRandomizedResponse(FrequencyOracle):
    """GRR frequency oracle (a.k.a. k-RR / direct encoding)."""

    def __init__(self, domain_size: int, epsilon: float, rng: RngLike = None) -> None:
        super().__init__(domain_size, epsilon, rng)
        e = np.exp(self.epsilon)
        self._p = e / (e + self.domain_size - 1.0)
        self._q = 1.0 / (e + self.domain_size - 1.0)

    @property
    def p(self) -> float:
        return self._p

    @property
    def q(self) -> float:
        return self._q

    def perturb_many(self, values: Sequence[int]) -> np.ndarray:
        """Each user's randomized report, shape ``(n,)``."""
        arr = self._check_values(values)
        n = arr.size
        keep = self.rng.random(n) < self._p
        # A "lie" is drawn uniformly from the d-1 other values: draw from
        # [0, d-1) and shift by one past the true value to exclude it.
        lies = self.rng.integers(0, self.domain_size - 1, size=n) if self.domain_size > 1 else arr.copy()
        if self.domain_size > 1:
            lies = (arr + 1 + lies) % self.domain_size
        return np.where(keep, arr, lies)

    def aggregate(self, reports: np.ndarray) -> np.ndarray:
        """Debias a vector of randomized reports into estimated counts."""
        reports = np.asarray(reports, dtype=np.int64)
        n = reports.size
        if n == 0:
            return np.zeros(self.domain_size)
        counts = np.bincount(reports, minlength=self.domain_size).astype(float)
        return (counts - n * self._q) / (self._p - self._q)

    def collect(self, values: Sequence[int]) -> np.ndarray:
        return self.aggregate(self.perturb_many(values))

    def variance(self, n: int) -> float:
        if n <= 0:
            return float("inf")
        # Standard GRR variance at small true frequency: q(1-q) / (n (p-q)^2).
        return float(self._q * (1 - self._q) / (n * (self._p - self._q) ** 2))
