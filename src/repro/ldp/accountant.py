"""Privacy accounting for w-event LDP.

The paper's Theorem 3 states that RetraSyn satisfies w-event ε-LDP for every
user.  This module makes the guarantee *checkable*: pipelines register every
user's per-timestamp budget spend with an accountant, which raises
:class:`~repro.exceptions.PrivacyBudgetError` the moment any sliding window
of ``w`` consecutive timestamps would exceed ``epsilon`` for any user
(Definition 3), and exposes audit summaries for tests and reports.

Two interchangeable ledger engines implement the same surface:

* :class:`PrivacyAccountant` — the **object** reference: a per-uid dict of
  full spend histories.  Simple, order-free, able to answer any historical
  query; cost grows per user per spend (a Python loop in ``spend_many``).
* :class:`ColumnarPrivacyAccountant` — the **columnar** engine used by the
  pipeline: spends live in an ``(n_slots, w)`` numpy ring buffer indexed by
  a :class:`~repro.stream.slots.UserSlotTable`, so ``spend_many``,
  ``window_spend_many``, ``remaining_many`` and the strict-mode violation
  check are array ops over whole report batches with no per-user loop.
  The ledger retains exactly the live window per user (all the w-event
  guarantee needs) plus running lifetime totals and the running maximum
  window spend, and therefore requires spend timestamps to be
  non-decreasing — which the curator's consecutive-timestamp protocol
  guarantees.  ``tests/ldp/test_accountant_differential.py`` pins the two
  engines to identical spends, refusals, violations and window totals on
  randomized schedules.

Select via :func:`make_accountant` /
``RetraSynConfig(accountant_mode="columnar" | "object")``.

Both engines work for both division styles:

* budget division — every active user reports each timestamp with a small
  ``ε_t``; the accountant checks ``Σ ε_t over any window ≤ ε``;
* population division — a sampled subset reports with the full ``ε`` and is
  marked *inactive* until recycled at ``t + w``; each user therefore spends
  at most ``ε`` per window, which the accountant verifies directly.
"""

from __future__ import annotations

import operator
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.stream.slots import UserSlotTable

#: Tolerance for floating-point budget accumulation.
_EPS_TOL = 1e-9

#: The selectable ledger engines (RetraSynConfig.accountant_mode).
ACCOUNTANT_MODES = ("columnar", "object")

#: Ring-buffer sentinel: "this cell was never written".
_NEVER = np.iinfo(np.int64).min // 2


def _as_uid(user_id) -> int:
    """Exact-integer coercion; floats and other types are rejected."""
    try:
        return operator.index(user_id)
    except TypeError:
        raise ConfigurationError(
            f"user ids must be integers, got {user_id!r}"
        ) from None


def _as_uid_array(user_ids) -> np.ndarray:
    """Normalise a batch of user ids to an int64 array, rejecting non-ints.

    Accepts numpy integer arrays of any width, plain sequences and
    generators.  Float / object arrays raise instead of being silently
    coerced (the regression the differential suite pins).
    """
    if isinstance(user_ids, np.ndarray):
        ids = user_ids
    else:
        ids = np.asarray(list(user_ids))
    if ids.size and not np.issubdtype(ids.dtype, np.integer):
        raise ConfigurationError(
            f"user ids must be an integer array, got dtype {ids.dtype}"
        )
    if ids.dtype == np.uint64 and ids.size and ids.max() > np.uint64(
        np.iinfo(np.int64).max
    ):
        # astype would wrap these to negative ids, aliasing distinct users.
        raise ConfigurationError("user ids exceed the int64 range")
    return np.atleast_1d(ids.astype(np.int64, copy=False))


def _checked_spend(epsilon) -> float:
    if epsilon < 0:
        raise ConfigurationError(f"cannot spend negative budget: {epsilon}")
    return float(epsilon)


@dataclass(frozen=True)
class SpendRecord:
    """One user's budget spend at one timestamp."""

    timestamp: int
    epsilon: float


class PrivacyAccountant:
    """Dict-ledger reference accountant (``accountant_mode="object"``).

    Parameters
    ----------
    epsilon:
        Total budget ε available inside any window of ``w`` timestamps.
    w:
        Sliding-window length (``w >= 1``).
    strict:
        When ``True`` (default) a violating spend raises
        :class:`PrivacyBudgetError` *before* being recorded; when ``False``
        violations are recorded and merely reported by :meth:`verify`.
    """

    def __init__(self, epsilon: float, w: int, strict: bool = True) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.epsilon = float(epsilon)
        self.w = int(w)
        self.strict = bool(strict)
        self._spends: Dict[int, list[SpendRecord]] = defaultdict(list)
        self._violations: list[tuple[int, int, float]] = []
        # Operational counters (scraped by /metrics, never part of the
        # audit summary): spends actually recorded, and spends refused or
        # flagged for breaching the window bound.
        self.n_spend_events = 0
        self.n_refusals = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def spend(self, user_id: int, timestamp: int, epsilon: float) -> None:
        """Record that ``user_id`` consumed ``epsilon`` at ``timestamp``."""
        epsilon = _checked_spend(epsilon)
        # Validate the uid even for free spends, so the two engines reject
        # bad ids identically regardless of epsilon.
        user_id = _as_uid(user_id)
        if epsilon == 0:
            return
        timestamp = int(timestamp)
        window_total = self.window_spend(user_id, timestamp) + epsilon
        if window_total > self.epsilon + _EPS_TOL:
            self.n_refusals += 1
            if self.strict:
                # The spend is refused outright, so no violation is recorded:
                # the ledger still describes only what actually happened.
                raise PrivacyBudgetError(
                    f"user {user_id} would spend {window_total:.6f} > "
                    f"epsilon={self.epsilon} in window ending at t={timestamp}"
                )
            self._violations.append((user_id, timestamp, window_total))
        self._spends[user_id].append(SpendRecord(timestamp, epsilon))
        self.n_spend_events += 1

    def spend_many(self, user_ids: Iterable[int], timestamp: int, epsilon: float) -> None:
        """Record an identical spend for a batch of users.

        Numpy integer arrays are accepted directly; float or object arrays
        raise :class:`~repro.exceptions.ConfigurationError` instead of
        silently creating non-int ledger keys.
        """
        if isinstance(user_ids, np.ndarray):
            user_ids = _as_uid_array(user_ids).tolist()
        for uid in user_ids:
            self.spend(uid, timestamp, epsilon)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def window_spend(self, user_id: int, timestamp: int) -> float:
        """Budget spent by ``user_id`` within ``[timestamp-w+1, timestamp]``."""
        lo = timestamp - self.w + 1
        return sum(
            r.epsilon
            for r in self._spends.get(user_id, ())
            if lo <= r.timestamp <= timestamp
        )

    def window_spend_many(self, user_ids, timestamp: int) -> np.ndarray:
        """Vectorized-signature twin of :meth:`window_spend` (still a loop)."""
        ids = _as_uid_array(user_ids)
        return np.asarray(
            [self.window_spend(int(u), timestamp) for u in ids], dtype=float
        )

    def remaining_many(self, user_ids, timestamp: int) -> np.ndarray:
        """Per-user budget still spendable in the window ending at ``timestamp``."""
        return np.maximum(0.0, self.epsilon - self.window_spend_many(user_ids, timestamp))

    def total_spend(self, user_id: int) -> float:
        """Lifetime budget spent by one user (for audit output only)."""
        return sum(r.epsilon for r in self._spends.get(user_id, ()))

    def max_window_spend(self) -> float:
        """The largest any-user any-window spend observed so far."""
        best = 0.0
        for uid, records in self._spends.items():
            timestamps = sorted({r.timestamp for r in records})
            for t in timestamps:
                best = max(best, self.window_spend(uid, t + self.w - 1))
        return best

    def verify(self) -> bool:
        """Whether every user satisfied the w-event bound at all times."""
        return not self._violations and self.max_window_spend() <= self.epsilon + _EPS_TOL

    @property
    def violations(self) -> list[tuple[int, int, float]]:
        """Recorded ``(user_id, timestamp, window_total)`` violations."""
        return list(self._violations)

    @property
    def n_users(self) -> int:
        return len(self._spends)

    def user_ids(self) -> list[int]:
        """Every user with at least one recorded spend (audit surface)."""
        return list(self._spends)

    def summary(self) -> dict:
        """Audit summary suitable for experiment reports."""
        return {
            "epsilon": self.epsilon,
            "w": self.w,
            "n_users": self.n_users,
            "max_window_spend": self.max_window_spend(),
            "n_violations": len(self._violations),
            "satisfied": self.verify(),
        }


class ColumnarPrivacyAccountant:
    """Ring-buffer ledger over a dense slot table (``accountant_mode="columnar"``).

    Spends at timestamp ``t`` land in column ``t % w`` of an
    ``(n_slots, w)`` float matrix; a parallel int64 matrix remembers which
    timestamp each cell belongs to, so window totals are one masked
    row-sum and never require clearing sweeps.  All batch operations —
    recording, the strict refusal check, violation detection, window and
    remaining-budget queries — are numpy array ops over the whole batch.

    Semantics match :class:`PrivacyAccountant` exactly (including partial
    recording of a batch prefix before a strict refusal, and per-row
    violation entries under ``strict=False``), with two documented
    restrictions that follow from keeping only the live window:

    * spend timestamps must be non-decreasing (the curator's protocol
      already enforces consecutive ``t``); out-of-order spends raise
      :class:`~repro.exceptions.ConfigurationError`;
    * :meth:`window_spend` is exact for windows ending at or after the
      latest recorded timestamp; queries about long-closed windows may
      undercount because their cells have been recycled.

    Parameters
    ----------
    epsilon, w, strict:
        As for :class:`PrivacyAccountant`.
    slots:
        Optional shared :class:`~repro.stream.slots.UserSlotTable`; the
        unsharded curator passes the same table to its user tracker so a
        user occupies one row in both planes.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        strict: bool = True,
        slots: Optional[UserSlotTable] = None,
    ) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.epsilon = float(epsilon)
        self.w = int(w)
        self.strict = bool(strict)
        self._slots = slots if slots is not None else UserSlotTable()
        self._ring = np.zeros((0, self.w))
        self._ring_t = np.full((0, self.w), _NEVER, dtype=np.int64)
        self._total = np.zeros(0)
        self._max_window = 0.0
        self._frontier: Optional[int] = None
        self._violations: list[tuple[int, int, float]] = []
        # Operational counters (scraped by /metrics, never part of the
        # audit summary); counted identically to the object ledger's loop.
        self.n_spend_events = 0
        self.n_refusals = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def spend(self, user_id: int, timestamp: int, epsilon: float) -> None:
        """Record that ``user_id`` consumed ``epsilon`` at ``timestamp``."""
        self.spend_many(np.asarray([_as_uid(user_id)], dtype=np.int64),
                        timestamp, epsilon)

    def spend_many(self, user_ids, timestamp: int, epsilon: float) -> None:
        """Record an identical spend for a batch of users — one array op.

        Duplicate ids inside one batch are handled with sequential
        semantics: the k-th occurrence sees the window total left by the
        first k−1, exactly as the object ledger's loop would.
        """
        epsilon = _checked_spend(epsilon)
        ids = _as_uid_array(user_ids)
        if epsilon == 0 or ids.size == 0:
            return
        timestamp = int(timestamp)
        if self._frontier is not None and timestamp < self._frontier:
            raise ConfigurationError(
                f"columnar ledger requires non-decreasing spend timestamps: "
                f"got t={timestamp} after t={self._frontier}"
            )
        slots = self._slots.intern(ids)
        self._ensure()
        # One stable sort serves the whole round: duplicate-occurrence
        # numbering here, and the touched-slot set _record needs (the
        # ROADMAP follow-up — previously each did its own argsort).
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        firsts = np.r_[True, sorted_slots[1:] != sorted_slots[:-1]]
        totals = self._window_totals(slots, timestamp)
        totals += (self._occurrences(slots, order, firsts) + 1) * epsilon
        over = totals > self.epsilon + _EPS_TOL
        n_record = ids.size
        offender = -1
        if over.any():
            if self.strict:
                # Rows before the first offender really happened (the object
                # ledger records them one by one before raising); keep them.
                offender = int(np.argmax(over))
                n_record = offender
                self.n_refusals += 1
            else:
                self.n_refusals += int(over.sum())
                for i in np.flatnonzero(over).tolist():
                    self._violations.append(
                        (int(ids[i]), timestamp, float(totals[i]))
                    )
        self.n_spend_events += int(n_record)
        if n_record:
            # The sorted unique set only describes the full batch; a strict
            # refusal truncates it, so _record falls back to its own sort.
            touched = sorted_slots[firsts] if n_record == ids.size else None
            self._record(slots[:n_record], timestamp, epsilon, touched=touched)
        if offender >= 0:
            raise PrivacyBudgetError(
                f"user {int(ids[offender])} would spend "
                f"{float(totals[offender]):.6f} > epsilon={self.epsilon} "
                f"in window ending at t={timestamp}"
            )

    def _record(
        self,
        slots: np.ndarray,
        t: int,
        epsilon: float,
        touched: Optional[np.ndarray] = None,
    ) -> None:
        """Apply a validated batch; ``touched`` is the pre-sorted distinct
        slot set when the caller already paid for the sort."""
        col = t % self.w
        stale = self._ring_t[slots, col] != t
        if stale.any():
            recycled = slots[stale]
            self._ring[recycled, col] = 0.0
            self._ring_t[recycled, col] = t
        np.add.at(self._ring, (slots, col), epsilon)
        np.add.at(self._total, slots, epsilon)
        if touched is None:
            touched = np.unique(slots)
        new_totals = self._window_totals(touched, t)
        if new_totals.size:
            self._max_window = max(self._max_window, float(new_totals.max()))
        self._frontier = t if self._frontier is None else max(self._frontier, t)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def window_spend(self, user_id: int, timestamp: int) -> float:
        """Budget spent by ``user_id`` within ``[timestamp-w+1, timestamp]``."""
        slot = self._slots.slot_of(_as_uid(user_id))
        if slot < 0 or slot >= len(self._total):
            return 0.0
        return float(
            self._window_totals(np.asarray([slot]), int(timestamp))[0]
        )

    def window_spend_many(self, user_ids, timestamp: int) -> np.ndarray:
        """Window totals for a whole batch of users, vectorized."""
        ids = _as_uid_array(user_ids)
        out = np.zeros(ids.size)
        slots = self._slots.lookup(ids)
        known = (slots >= 0) & (slots < len(self._total))
        if known.any():
            out[known] = self._window_totals(slots[known], int(timestamp))
        return out

    def remaining_many(self, user_ids, timestamp: int) -> np.ndarray:
        """Per-user budget still spendable in the window ending at ``timestamp``."""
        return np.maximum(0.0, self.epsilon - self.window_spend_many(user_ids, timestamp))

    def total_spend(self, user_id: int) -> float:
        """Lifetime budget spent by one user (for audit output only)."""
        slot = self._slots.slot_of(_as_uid(user_id))
        if slot < 0 or slot >= len(self._total):
            return 0.0
        return float(self._total[slot])

    def max_window_spend(self) -> float:
        """The largest any-user any-window spend observed so far.

        Maintained incrementally: every recorded batch refreshes the
        window totals of the touched slots, and any window's maximum is
        attained at a window ending on its last contained spend — so the
        running maximum over "windows ending at spend time" equals the
        object ledger's full-history scan.
        """
        return self._max_window

    def verify(self) -> bool:
        """Whether every user satisfied the w-event bound at all times."""
        return not self._violations and self._max_window <= self.epsilon + _EPS_TOL

    @property
    def violations(self) -> list[tuple[int, int, float]]:
        """Recorded ``(user_id, timestamp, window_total)`` violations."""
        return list(self._violations)

    @property
    def n_users(self) -> int:
        return int((self._total[: self._n_rows()] > 0.0).sum())

    def user_ids(self) -> list[int]:
        """Every user with at least one recorded spend (audit surface).

        Slot order — i.e. first time the shared table saw the user, which
        may predate their first spend when the table is shared with a
        tracker.
        """
        n = self._n_rows()
        spenders = np.flatnonzero(self._total[:n] > 0.0)
        return self._slots.uids[spenders].tolist()

    def summary(self) -> dict:
        """Audit summary suitable for experiment reports."""
        return {
            "epsilon": self.epsilon,
            "w": self.w,
            "n_users": self.n_users,
            "max_window_spend": self.max_window_spend(),
            "n_violations": len(self._violations),
            "satisfied": self.verify(),
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _n_rows(self) -> int:
        # The shared table can hold slots interned by other components
        # (tracker registrations) that never spent; rows exist lazily.
        return min(self._slots.n_slots, len(self._total))

    def _ensure(self) -> None:
        need = self._slots.n_slots
        cap = self._ring.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 1024)
        ring = np.zeros((new_cap, self.w))
        ring[:cap] = self._ring
        ring_t = np.full((new_cap, self.w), _NEVER, dtype=np.int64)
        ring_t[:cap] = self._ring_t
        total = np.zeros(new_cap)
        total[:cap] = self._total
        self._ring, self._ring_t, self._total = ring, ring_t, total

    def _window_totals(self, slots: np.ndarray, t: int) -> np.ndarray:
        """Window totals ``[t-w+1, t]`` for the given slots (one row-sum)."""
        if slots.size == 0:
            return np.zeros(0)
        cell_t = self._ring_t[slots]
        valid = (cell_t > t - self.w) & (cell_t <= t)
        return (self._ring[slots] * valid).sum(axis=1)

    @staticmethod
    def _occurrences(
        slots: np.ndarray,
        order: Optional[np.ndarray] = None,
        firsts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """For each row, how many earlier rows in the batch share its slot.

        ``order`` (a stable argsort of ``slots``) and ``firsts`` (the
        group-start mask over the sorted array) may be supplied by a caller
        that already sorted the batch; omitted, they are computed here.
        """
        if order is None:
            order = np.argsort(slots, kind="stable")
        s = slots[order]
        n = s.size
        if firsts is None:
            firsts = np.r_[True, s[1:] != s[:-1]]
        starts = np.flatnonzero(firsts)
        lengths = np.diff(np.r_[starts, n])
        idx = np.arange(n, dtype=np.int64)
        occ_sorted = idx - np.repeat(idx[starts], lengths)
        occ = np.empty(n, dtype=np.int64)
        occ[order] = occ_sorted
        return occ


def make_accountant(
    epsilon: float,
    w: int,
    mode: str = "columnar",
    strict: bool = True,
    slots: Optional[UserSlotTable] = None,
):
    """Build the ledger engine selected by ``mode``.

    ``slots`` is honoured only by the columnar engine (the object ledger
    keys on raw uids and needs no slot table).
    """
    if mode not in ACCOUNTANT_MODES:
        raise ConfigurationError(
            f"accountant_mode must be one of {ACCOUNTANT_MODES}, got {mode!r}"
        )
    if mode == "object":
        return PrivacyAccountant(epsilon, w, strict=strict)
    return ColumnarPrivacyAccountant(epsilon, w, strict=strict, slots=slots)


class SlidingBudgetTracker:
    """Curator-side view of budget already committed in the current window.

    Used by budget-division allocators to compute the remaining budget
    ``ε_rm = ε − Σ_{i=t-w+1}^{t-1} ε_i`` (Section III-E).  This is separate
    from :class:`PrivacyAccountant` because the allocator needs only the
    curator's own schedule, not per-user histories.
    """

    def __init__(self, epsilon: float, w: int) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.epsilon = float(epsilon)
        self.w = int(w)
        self._window: deque[float] = deque([0.0] * self.w, maxlen=self.w)

    @property
    def remaining(self) -> float:
        """Budget still available for the next timestamp's report."""
        return max(0.0, self.epsilon - sum(list(self._window)[1:]))

    def commit(self, epsilon_t: float, checked: bool = True) -> None:
        """Record the budget used at the current timestamp and advance.

        ``checked=False`` skips the schedule-level window bound — used by
        per-user allocators (``allocator="adaptive-user"``) whose safety
        invariant is enforced against each participant's own ledger row
        rather than the curator's global schedule.
        """
        if epsilon_t < 0:
            raise ConfigurationError(f"cannot commit negative budget: {epsilon_t}")
        if checked and epsilon_t > self.remaining + _EPS_TOL:
            raise PrivacyBudgetError(
                f"committing {epsilon_t:.6f} exceeds remaining window budget "
                f"{self.remaining:.6f}"
            )
        self._window.append(float(epsilon_t))

    def window_history(self) -> list[float]:
        """Budgets of the last ``w`` timestamps, oldest first."""
        return list(self._window)
