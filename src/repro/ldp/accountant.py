"""Privacy accounting for w-event LDP.

The paper's Theorem 3 states that RetraSyn satisfies w-event ε-LDP for every
user.  This module makes the guarantee *checkable*: pipelines register every
user's per-timestamp budget spend with a :class:`PrivacyAccountant`, which
raises :class:`~repro.exceptions.PrivacyBudgetError` the moment any sliding
window of ``w`` consecutive timestamps would exceed ``epsilon`` for any user
(Definition 3), and exposes audit summaries for tests and reports.

The accountant works for both division styles:

* budget division — every active user reports each timestamp with a small
  ``ε_t``; the accountant checks ``Σ ε_t over any window ≤ ε``;
* population division — a sampled subset reports with the full ``ε`` and is
  marked *inactive* until recycled at ``t + w``; each user therefore spends
  at most ``ε`` per window, which the accountant verifies directly.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.exceptions import ConfigurationError, PrivacyBudgetError

#: Tolerance for floating-point budget accumulation.
_EPS_TOL = 1e-9


@dataclass(frozen=True)
class SpendRecord:
    """One user's budget spend at one timestamp."""

    timestamp: int
    epsilon: float


class PrivacyAccountant:
    """Tracks per-user spends and enforces the w-event ε-LDP bound.

    Parameters
    ----------
    epsilon:
        Total budget ε available inside any window of ``w`` timestamps.
    w:
        Sliding-window length (``w >= 1``).
    strict:
        When ``True`` (default) a violating spend raises
        :class:`PrivacyBudgetError` *before* being recorded; when ``False``
        violations are recorded and merely reported by :meth:`verify`.
    """

    def __init__(self, epsilon: float, w: int, strict: bool = True) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.epsilon = float(epsilon)
        self.w = int(w)
        self.strict = bool(strict)
        self._spends: Dict[int, list[SpendRecord]] = defaultdict(list)
        self._violations: list[tuple[int, int, float]] = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def spend(self, user_id: int, timestamp: int, epsilon: float) -> None:
        """Record that ``user_id`` consumed ``epsilon`` at ``timestamp``."""
        if epsilon < 0:
            raise ConfigurationError(f"cannot spend negative budget: {epsilon}")
        if epsilon == 0:
            return
        window_total = self.window_spend(user_id, timestamp) + epsilon
        if window_total > self.epsilon + _EPS_TOL:
            if self.strict:
                # The spend is refused outright, so no violation is recorded:
                # the ledger still describes only what actually happened.
                raise PrivacyBudgetError(
                    f"user {user_id} would spend {window_total:.6f} > "
                    f"epsilon={self.epsilon} in window ending at t={timestamp}"
                )
            self._violations.append((user_id, timestamp, window_total))
        self._spends[user_id].append(SpendRecord(timestamp, float(epsilon)))

    def spend_many(self, user_ids: Iterable[int], timestamp: int, epsilon: float) -> None:
        """Record an identical spend for a batch of users."""
        for uid in user_ids:
            self.spend(uid, timestamp, epsilon)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def window_spend(self, user_id: int, timestamp: int) -> float:
        """Budget spent by ``user_id`` within ``[timestamp-w+1, timestamp]``."""
        lo = timestamp - self.w + 1
        return sum(
            r.epsilon
            for r in self._spends.get(user_id, ())
            if lo <= r.timestamp <= timestamp
        )

    def total_spend(self, user_id: int) -> float:
        """Lifetime budget spent by one user (for audit output only)."""
        return sum(r.epsilon for r in self._spends.get(user_id, ()))

    def max_window_spend(self) -> float:
        """The largest any-user any-window spend observed so far."""
        best = 0.0
        for uid, records in self._spends.items():
            timestamps = sorted({r.timestamp for r in records})
            for t in timestamps:
                best = max(best, self.window_spend(uid, t + self.w - 1))
        return best

    def verify(self) -> bool:
        """Whether every user satisfied the w-event bound at all times."""
        return not self._violations and self.max_window_spend() <= self.epsilon + _EPS_TOL

    @property
    def violations(self) -> list[tuple[int, int, float]]:
        """Recorded ``(user_id, timestamp, window_total)`` violations."""
        return list(self._violations)

    @property
    def n_users(self) -> int:
        return len(self._spends)

    def summary(self) -> dict:
        """Audit summary suitable for experiment reports."""
        return {
            "epsilon": self.epsilon,
            "w": self.w,
            "n_users": self.n_users,
            "max_window_spend": self.max_window_spend(),
            "n_violations": len(self._violations),
            "satisfied": self.verify(),
        }


class SlidingBudgetTracker:
    """Curator-side view of budget already committed in the current window.

    Used by budget-division allocators to compute the remaining budget
    ``ε_rm = ε − Σ_{i=t-w+1}^{t-1} ε_i`` (Section III-E).  This is separate
    from :class:`PrivacyAccountant` because the allocator needs only the
    curator's own schedule, not per-user histories.
    """

    def __init__(self, epsilon: float, w: int) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        if w < 1:
            raise ConfigurationError(f"window size w must be >= 1, got {w}")
        self.epsilon = float(epsilon)
        self.w = int(w)
        self._window: deque[float] = deque([0.0] * self.w, maxlen=self.w)

    @property
    def remaining(self) -> float:
        """Budget still available for the next timestamp's report."""
        return max(0.0, self.epsilon - sum(list(self._window)[1:]))

    def commit(self, epsilon_t: float) -> None:
        """Record the budget used at the current timestamp and advance."""
        if epsilon_t < 0:
            raise ConfigurationError(f"cannot commit negative budget: {epsilon_t}")
        if epsilon_t > self.remaining + _EPS_TOL:
            raise PrivacyBudgetError(
                f"committing {epsilon_t:.6f} exceeds remaining window budget "
                f"{self.remaining:.6f}"
            )
        self._window.append(float(epsilon_t))

    def window_history(self) -> list[float]:
        """Budgets of the last ``w`` timestamps, oldest first."""
        return list(self._window)
