"""Local differential privacy substrate.

Implements the frequency-oracle protocols the paper builds on (Section II-A):

* :class:`~repro.ldp.oue.OptimizedUnaryEncoding` — the paper's FO of choice
  (optimal variance, Wang et al. USENIX Security 2017).
* :class:`~repro.ldp.grr.GeneralizedRandomizedResponse` and
  :class:`~repro.ldp.olh.OptimizedLocalHashing` — standard alternatives used
  for cross-validation in tests and ablation benches.

plus two interchangeable privacy-ledger engines that record every user's
per-timestamp budget spend and *verify* the w-event LDP guarantee
(Definition 3 / Theorem 3): the dict-based
:class:`~repro.ldp.accountant.PrivacyAccountant` reference and the
pipeline's vectorized
:class:`~repro.ldp.accountant.ColumnarPrivacyAccountant`, selected via
:func:`~repro.ldp.accountant.make_accountant`.
"""

from repro.ldp.freq_oracle import FrequencyOracle
from repro.ldp.oue import OptimizedUnaryEncoding, oue_variance
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.accountant import (
    ACCOUNTANT_MODES,
    ColumnarPrivacyAccountant,
    PrivacyAccountant,
    make_accountant,
)

__all__ = [
    "FrequencyOracle",
    "OptimizedUnaryEncoding",
    "oue_variance",
    "GeneralizedRandomizedResponse",
    "OptimizedLocalHashing",
    "PrivacyAccountant",
    "ColumnarPrivacyAccountant",
    "ACCOUNTANT_MODES",
    "make_accountant",
]
