"""Abstract frequency-oracle interface.

A frequency oracle (FO) is the basic LDP primitive (paper Section II-A): each
user holds one value from a finite domain ``{0, ..., d-1}``; the curator wants
an unbiased estimate of every value's frequency.  Concrete protocols differ in
how each user's value is encoded and perturbed, but all expose the same
``collect`` contract so the rest of the library is protocol-agnostic.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DomainError
from repro.rng import RngLike, ensure_rng


class FrequencyOracle(abc.ABC):
    """Base class for ε-LDP frequency-estimation protocols.

    Parameters
    ----------
    domain_size:
        Cardinality ``d`` of the value domain.
    epsilon:
        Per-report privacy budget (must be positive).
    rng:
        Seed / generator used for all perturbation randomness.
    """

    def __init__(self, domain_size: int, epsilon: float, rng: RngLike = None) -> None:
        if domain_size < 1:
            raise ConfigurationError(f"domain_size must be >= 1, got {domain_size}")
        if not (epsilon > 0.0) or not np.isfinite(epsilon):
            raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    # protocol surface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def collect(self, values: Sequence[int]) -> np.ndarray:
        """Run the full user->curator round trip.

        Each entry of ``values`` is one user's true value.  Returns the
        curator's **unbiased estimated counts** per domain element, an array
        of shape ``(domain_size,)`` (estimates may be negative or
        non-integral; callers post-process as needed).
        """

    @abc.abstractmethod
    def variance(self, n: int) -> float:
        """Per-element estimation variance of the *frequency* (count / n)."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _check_values(self, values: Sequence[int]) -> np.ndarray:
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise DomainError(f"values must be one-dimensional, got shape {arr.shape}")
        if arr.size and (arr.min() < 0 or arr.max() >= self.domain_size):
            raise DomainError(
                f"values must lie in [0, {self.domain_size}), got range "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr

    def collect_batch(self, batch) -> np.ndarray:
        """Run the round trip over a columnar report batch.

        ``batch`` is a :class:`~repro.stream.reports.ReportBatch`; its
        ``state_idx`` column must contain only encodable states (filter
        with ``moves_only()`` first under a NoEQ space).
        """
        return self.collect(batch.state_idx)

    def estimate_frequencies(self, values: Sequence[int]) -> np.ndarray:
        """Convenience wrapper: estimated frequencies instead of counts."""
        n = len(values)
        if n == 0:
            return np.zeros(self.domain_size)
        return self.collect(values) / n


def clip_and_normalize(estimates: np.ndarray) -> np.ndarray:
    """Standard post-processing: clip negatives to 0 and renormalise.

    Post-processing never costs privacy (paper Theorem 2).  When all mass is
    clipped away the uniform distribution is returned, which is the usual
    convention for empty noisy histograms.
    """
    clipped = np.clip(np.asarray(estimates, dtype=float), 0.0, None)
    total = clipped.sum()
    if total <= 0.0:
        return np.full(clipped.shape, 1.0 / clipped.size)
    return clipped / total
