"""Optimized Unary Encoding (OUE) — the paper's frequency oracle.

Each user's value ``x`` is one-hot encoded into a ``d``-bit vector ``V`` and
every bit is perturbed independently (paper Eq. 2)::

    Pr[V̂[i] = 1] = 1/2            if V[i] = 1
    Pr[V̂[i] = 1] = 1/(e^ε + 1)    if V[i] = 0

The curator counts ones per position and debiases with
``f̂(x) = (f'(x)/n − q) / (1/2 − q)`` where ``q = 1/(e^ε + 1)``; the estimate
is unbiased with variance ``4 e^ε / (n (e^ε − 1)^2)`` (paper Eq. 3).

Three execution modes are provided:

* ``mode="exact"`` materialises every user's perturbed bit vector — the
  literal protocol, executed *batched*: all ``n`` reports are drawn as
  ``(chunk, d)`` Bernoulli arrays and aggregated with one column-sum per
  chunk, so the per-user Python loop disappears while the sampled joint
  distribution stays bit-for-bit that of the sequential protocol;
* ``mode="exact-loop"`` is the sequential reference: one
  :meth:`~OptimizedUnaryEncoding.perturb_one` call per user.  It exists so
  the batched path can be benchmarked and property-tested against the
  textbook formulation (``benchmarks/bench_engine_speedup.py``);
* ``mode="fast"`` samples the aggregated one-counts directly from the exact
  per-position binomial law, which is distribution-identical to summing
  ``n`` independent reports but orders of magnitude faster.  Statistical
  equivalence is property-tested in ``tests/ldp/test_oue.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ldp.freq_oracle import FrequencyOracle
from repro.rng import RngLike

#: Bound on ``chunk_users * domain_size`` for the batched exact path, so the
#: perturbed-bit working set stays ~tens of MB regardless of population size.
_BATCH_ELEMENTS = 4_000_000


def oue_variance(epsilon: float, n: int) -> float:
    """Paper Eq. 3: per-element frequency variance of OUE with ``n`` users."""
    if n <= 0:
        return float("inf")
    e = np.exp(epsilon)
    return float(4.0 * e / (n * (e - 1.0) ** 2))


class OptimizedUnaryEncoding(FrequencyOracle):
    """OUE frequency oracle (Wang et al. 2017), see module docstring."""

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        rng: RngLike = None,
        mode: str = "fast",
    ) -> None:
        super().__init__(domain_size, epsilon, rng)
        if mode not in ("exact", "exact-loop", "fast"):
            raise ConfigurationError(
                f"mode must be 'exact', 'exact-loop' or 'fast', got {mode!r}"
            )
        self.mode = mode
        self._p = 0.5
        self._q = 1.0 / (np.exp(self.epsilon) + 1.0)

    @property
    def p(self) -> float:
        """Probability a true 1-bit stays 1."""
        return self._p

    @property
    def q(self) -> float:
        """Probability a true 0-bit flips to 1."""
        return self._q

    # ------------------------------------------------------------------ #
    # user side
    # ------------------------------------------------------------------ #
    def perturb_one(self, value: int) -> np.ndarray:
        """Produce a single user's perturbed bit vector (exact protocol)."""
        self._check_values([value])
        bits = self.rng.random(self.domain_size) < self._q
        bits[value] = self.rng.random() < self._p
        return bits.astype(np.uint8)

    def perturb_many(self, values: Sequence[int]) -> np.ndarray:
        """Perturbed bit matrix of shape ``(n, domain_size)`` (exact mode)."""
        arr = self._check_values(values)
        n = arr.size
        bits = self.rng.random((n, self.domain_size)) < self._q
        keep = self.rng.random(n) < self._p
        bits[np.arange(n), arr] = keep
        return bits.astype(np.uint8)

    # ------------------------------------------------------------------ #
    # curator side
    # ------------------------------------------------------------------ #
    def aggregate(self, reports: np.ndarray) -> np.ndarray:
        """Debias a stack of perturbed bit vectors into estimated counts."""
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != self.domain_size:
            raise ConfigurationError(
                f"reports must have shape (n, {self.domain_size}), got {reports.shape}"
            )
        ones = reports.sum(axis=0).astype(float)
        n = reports.shape[0]
        return self._debias(ones, n)

    def _debias(self, ones: np.ndarray, n: int) -> np.ndarray:
        if n == 0:
            return np.zeros(self.domain_size)
        return (ones - n * self._q) / (self._p - self._q)

    def simulate_ones(self, values: Sequence[int]) -> np.ndarray:
        """User-side half of the round trip: per-position one-counts.

        In ``exact`` mode every user's bit vector is materialised (in
        memory-bounded batches) and column-summed; ``exact-loop`` does the
        same one user at a time; in ``fast`` mode the sums are drawn directly
        from the per-position binomial law
        ``Binomial(true_j, p) + Binomial(n − true_j, q)``, which has exactly
        the distribution of the exact sum.
        """
        arr = self._check_values(values)
        n = arr.size
        if n == 0:
            return np.zeros(self.domain_size)
        if self.mode == "exact":
            return self._simulate_ones_batched(arr)
        if self.mode == "exact-loop":
            return self._simulate_ones_loop(arr)
        true_counts = np.bincount(arr, minlength=self.domain_size)
        ones = self.rng.binomial(true_counts, self._p) + self.rng.binomial(
            n - true_counts, self._q
        )
        return ones.astype(float)

    def _simulate_ones_batched(self, arr: np.ndarray) -> np.ndarray:
        """All reports as ``(chunk, d)`` Bernoulli draws + one column-sum each.

        Semantically identical to :meth:`_simulate_ones_loop`: each user's
        report is still an independent ``d``-bit vector with the exact
        per-bit flip probabilities; only the loop moved into numpy.
        """
        ones = np.zeros(self.domain_size, dtype=np.int64)
        chunk = max(1, _BATCH_ELEMENTS // self.domain_size)
        # float32 uniforms halve the memory traffic; the implied Bernoulli
        # probabilities differ from the float64 targets by < 2^-24, far
        # below anything observable at protocol scale.
        q32 = np.float32(self._q)
        p32 = np.float32(self._p)
        for lo in range(0, arr.size, chunk):
            part = arr[lo : lo + chunk]
            m = part.size
            bits = self.rng.random((m, self.domain_size), dtype=np.float32) < q32
            bits[np.arange(m), part] = self.rng.random(m, dtype=np.float32) < p32
            ones += bits.sum(axis=0)
        return ones.astype(float)

    def _simulate_ones_loop(self, arr: np.ndarray) -> np.ndarray:
        """Sequential reference: one perturbed vector per user, accumulated."""
        ones = np.zeros(self.domain_size, dtype=np.int64)
        for value in arr:
            ones += self.perturb_one(int(value))
        return ones.astype(float)

    def debias(self, ones: np.ndarray, n: int) -> np.ndarray:
        """Curator-side half: unbiased estimated counts from one-counts."""
        return self._debias(np.asarray(ones, dtype=float), n)

    def collect(self, values: Sequence[int]) -> np.ndarray:
        """Full round trip: perturb all users' values, debias counts."""
        arr = self._check_values(values)
        n = arr.size
        if n == 0:
            return np.zeros(self.domain_size)
        return self._debias(self.simulate_ones(arr), n)

    def variance(self, n: int) -> float:
        return oue_variance(self.epsilon, n)
