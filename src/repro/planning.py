"""Deployment planning: predicted error as a function of (ε, w, n, K).

Section IV and the Fig. 6 discussion give the analytical relationships an
operator needs before deploying:

* per-state estimation noise is the OUE variance ``4 e^ε / (n (e^ε − 1)²)``
  (Eq. 3) with ``n`` the per-round reporter count;
* the transition domain grows as ``O(9 K²)`` (+ 2K² enter/quit states), so
  the *aggregate* noise across the model grows with K while each cell's
  share of the signal shrinks as ``1/K²``;
* under population division with portion ``p``, the per-round reporter
  count is ``p · n_active``; under budget division every reporter spends
  ``ε_t ≈ p · ε`` instead.

This module packages those formulas into: a per-configuration noise report,
a signal-to-noise ratio, and a granularity recommendation (the K that
maximises predicted SNR — the analytic counterpart of Fig. 6's sweet spot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ldp.oue import oue_variance


@dataclass(frozen=True)
class DeploymentPlan:
    """Inputs of a planned deployment."""

    epsilon: float = 1.0
    w: int = 20
    n_active: int = 10_000
    k: int = 6
    division: str = "population"  # "population" | "budget"
    portion: float = 0.05  # expected per-timestamp allocation portion p

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.w < 1:
            raise ConfigurationError(f"w must be >= 1, got {self.w}")
        if self.n_active < 1:
            raise ConfigurationError(f"n_active must be >= 1, got {self.n_active}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.division not in ("population", "budget"):
            raise ConfigurationError(f"unknown division {self.division!r}")
        if not 0 < self.portion <= 1:
            raise ConfigurationError(f"portion must be in (0, 1], got {self.portion}")


def state_domain_size(k: int, include_entering_quitting: bool = True) -> int:
    """Exact size of the reachability-constrained transition domain.

    Interior cells have 9 successors, edges 6, corners 4; plus 2K² states
    for entering/quitting when modelled.
    """
    if k == 1:
        moves = 1
    else:
        corners = 4 * 4
        edges = 4 * (k - 2) * 6
        interior = (k - 2) ** 2 * 9
        moves = corners + edges + interior
    return moves + (2 * k * k if include_entering_quitting else 0)


def per_round_noise_std(plan: DeploymentPlan) -> float:
    """Predicted per-state std of one collection round's estimates."""
    if plan.division == "population":
        n = max(1, int(plan.portion * plan.n_active))
        eps = plan.epsilon
    else:
        n = plan.n_active
        eps = plan.portion * plan.epsilon
    return float(np.sqrt(oue_variance(eps, n)))


def signal_scale(plan: DeploymentPlan) -> float:
    """Typical per-state signal magnitude.

    With reports spread over the movement domain, a typical frequency is
    ``1 / |S_move|`` — the quantity the noise must not drown.
    """
    moves = state_domain_size(plan.k, include_entering_quitting=False)
    return 1.0 / moves


def snr(plan: DeploymentPlan) -> float:
    """Predicted signal-to-noise ratio of one collection round."""
    noise = per_round_noise_std(plan)
    if noise == 0:
        return float("inf")
    return signal_scale(plan) / noise


def recommend_k(
    plan: DeploymentPlan,
    candidates: Sequence[int] = (2, 4, 6, 8, 10, 14, 18),
    min_snr: float = 1.0,
) -> int:
    """Largest candidate K whose predicted SNR still clears ``min_snr``.

    Finer grids carry more spatial information, so among configurations
    where the signal survives the noise the finest is preferred; when none
    clears the bar, the coarsest candidate is returned (the best that can
    be done with the population at hand) — the analytic version of the
    Fig. 6 guidance that both extremes hurt.
    """
    viable = []
    for k in sorted(candidates):
        candidate = DeploymentPlan(
            epsilon=plan.epsilon,
            w=plan.w,
            n_active=plan.n_active,
            k=k,
            division=plan.division,
            portion=plan.portion,
        )
        if snr(candidate) >= min_snr:
            viable.append(k)
    if viable:
        return viable[-1]
    return min(candidates)


def plan_report(plan: DeploymentPlan) -> dict:
    """All planning quantities for one configuration."""
    return {
        "epsilon": plan.epsilon,
        "w": plan.w,
        "n_active": plan.n_active,
        "k": plan.k,
        "division": plan.division,
        "portion": plan.portion,
        "state_domain": state_domain_size(plan.k),
        "per_round_reporters": (
            max(1, int(plan.portion * plan.n_active))
            if plan.division == "population"
            else plan.n_active
        ),
        "per_round_epsilon": (
            plan.epsilon if plan.division == "population" else plan.portion * plan.epsilon
        ),
        "noise_std": per_round_noise_std(plan),
        "signal_scale": signal_scale(plan),
        "snr": snr(plan),
        "recommended_k": recommend_k(plan),
    }


def format_plan_report(report: dict) -> str:
    """Human-readable rendering of :func:`plan_report`."""
    lines = ["Deployment plan", "==============="]
    for key in (
        "epsilon", "w", "n_active", "k", "division", "portion",
        "state_domain", "per_round_reporters", "per_round_epsilon",
    ):
        lines.append(f"  {key:20s} {report[key]}")
    lines.append(f"  {'noise_std':20s} {report['noise_std']:.5f}")
    lines.append(f"  {'signal_scale':20s} {report['signal_scale']:.5f}")
    lines.append(f"  {'snr':20s} {report['snr']:.3f}")
    lines.append(f"  {'recommended_k':20s} {report['recommended_k']}")
    return "\n".join(lines)
