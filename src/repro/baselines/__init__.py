"""LDP-IDS baselines (Ren et al., SIGMOD 2022), adapted per the paper.

LDP-IDS is the state-of-the-art w-event ε-LDP *histogram* stream publisher.
Following Section V-A, it is adapted to trajectory publishing by letting it
collect transition states with its two-step private mechanism and feeding
the released statistics into the same Markov generator as RetraSyn — but
without entering/quitting modelling, dynamic user tracking, or size
adjustment.

Four strategies:

* :class:`~repro.baselines.ldp_ids.LBD` — budget division, exponentially
  decaying publication budgets;
* :class:`~repro.baselines.ldp_ids.LBA` — budget absorption: uniform
  per-timestamp publication budgets, skipped budgets absorbed later;
* :class:`~repro.baselines.ldp_ids.LPD` — population analogue of LBD;
* :class:`~repro.baselines.ldp_ids.LPA` — population analogue of LBA.
"""

from repro.baselines.histogram import HistogramStreamPublisher
from repro.baselines.ldp_ids import LBA, LBD, LPA, LPD, LdpIdsConfig, make_baseline
from repro.baselines.ldptrace import LDPTraceConfig, LDPTraceSynthesizer

__all__ = [
    "LBD",
    "LBA",
    "LPD",
    "LPA",
    "LdpIdsConfig",
    "make_baseline",
    "HistogramStreamPublisher",
    "LDPTraceConfig",
    "LDPTraceSynthesizer",
]
