"""LDPTrace-style one-shot historical trajectory synthesis.

The paper positions RetraSyn against *historical* trajectory-synthesis
frameworks — most directly its own predecessor LDPTrace (Du et al., VLDB
2023, reference [22]) — which perform a single offline release: users
report trajectory features once, the curator builds a probabilistic model,
and complete synthetic trajectories are generated.  Such methods cannot
stream (they need the full trajectory, e.g. its length, up front;
Section I), but they are the natural yardstick for RetraSyn's *historical*
utility.

This module implements the LDPTrace recipe on our substrates:

* each user is assigned to exactly **one** of four report groups, and
  answers one question with the full budget ε via OUE (so the release is
  user-level ε-LDP — strictly stronger than one w-window):

  1. a uniformly sampled **intra-trajectory transition** (adjacent-cell
     movement, the paper's reachability-constrained domain);
  2. their **start cell**;
  3. their **end cell**;
  4. their **trajectory length**, clipped into ``n_length_bins`` buckets;

* the curator normalises the four estimates into a first-order Markov
  model, start/end distributions and a length distribution;
* synthesis draws a length, a start cell, then walks the Markov chain,
  biasing the final step toward the end-cell distribution.

The output is a historical database (all synthetic trajectories start at
t=0), so only trajectory-level and aggregate-spatial metrics are
meaningful — exactly the comparison ``experiments/historical.py`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.exceptions import ConfigurationError
from repro.geo.trajectory import CellTrajectory
from repro.ldp.accountant import PrivacyAccountant
from repro.ldp.freq_oracle import clip_and_normalize
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.rng import RngLike, ensure_rng
from repro.stream.state_space import TransitionStateSpace
from repro.stream.stream import StreamDataset


@dataclass
class LDPTraceConfig:
    """Configuration of the one-shot historical synthesizer."""

    epsilon: float = 1.0
    n_length_bins: int = 16
    max_length: Optional[int] = None  # None => longest real trajectory
    oracle_mode: str = "fast"
    track_privacy: bool = True
    seed: RngLike = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.n_length_bins < 1:
            raise ConfigurationError(
                f"n_length_bins must be >= 1, got {self.n_length_bins}"
            )

    @property
    def label(self) -> str:
        return "LDPTrace"


@dataclass
class HistoricalRelease:
    """Output of one historical synthesis."""

    synthetic: StreamDataset
    config: LDPTraceConfig
    accountant: Optional[PrivacyAccountant]
    model: GlobalMobilityModel
    length_distribution: np.ndarray


class LDPTraceSynthesizer:
    """One-shot LDP trajectory synthesizer (historical release)."""

    def __init__(self, config: Optional[LDPTraceConfig] = None) -> None:
        self.config = config or LDPTraceConfig()

    # ------------------------------------------------------------------ #
    def run(self, dataset: StreamDataset) -> HistoricalRelease:
        """Collect once, model, and synthesize a full historical database."""
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        grid = dataset.grid
        space = TransitionStateSpace(grid, include_entering_quitting=False)
        max_len = cfg.max_length or max(
            (len(t) for t in dataset.trajectories), default=1
        )
        # A single "window": one report per user ever => user-level LDP.
        accountant = (
            PrivacyAccountant(cfg.epsilon, w=1) if cfg.track_privacy else None
        )

        groups = self._assign_groups(dataset, rng)
        trans_freq = self._collect_transitions(groups["transition"], space, rng, accountant)
        start_freq = self._collect_cells(
            groups["start"], lambda tr: tr.cells[0], grid.n_cells, rng, accountant
        )
        end_freq = self._collect_cells(
            groups["end"], lambda tr: tr.cells[-1], grid.n_cells, rng, accountant
        )
        length_freq = self._collect_lengths(groups["length"], max_len, rng, accountant)

        model = GlobalMobilityModel(space)
        model.set_all(trans_freq)
        start_dist = clip_and_normalize(start_freq)
        end_dist = clip_and_normalize(end_freq)
        length_dist = clip_and_normalize(length_freq)

        synthetic = self._synthesize(
            dataset, grid, space, model, start_dist, end_dist, length_dist,
            max_len, rng,
        )
        return HistoricalRelease(
            synthetic=synthetic,
            config=cfg,
            accountant=accountant,
            model=model,
            length_distribution=length_dist,
        )

    # ------------------------------------------------------------------ #
    # collection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _assign_groups(dataset: StreamDataset, rng) -> dict:
        """Randomly partition users into the four report groups."""
        groups = {"transition": [], "start": [], "end": [], "length": []}
        names = list(groups)
        trajectories = [t for t in dataset.trajectories if len(t) > 0]
        assignment = rng.integers(0, len(names), size=len(trajectories))
        for traj, g in zip(trajectories, assignment):
            groups[names[int(g)]].append(traj)
        return groups

    def _collect_transitions(self, trajs, space, rng, accountant) -> np.ndarray:
        reporters = [t for t in trajs if len(t) >= 2]
        if not reporters:
            return np.zeros(space.size)
        values = []
        for tr in reporters:
            moves = tr.transitions()
            a, b = moves[int(rng.integers(0, len(moves)))]
            values.append(space.index_of_move(a, b))
        est = self._oracle(space.size, rng).collect(values)
        self._spend(accountant, reporters)
        return est / len(reporters)

    def _collect_cells(self, trajs, pick, domain, rng, accountant) -> np.ndarray:
        if not trajs:
            return np.zeros(domain)
        values = [pick(tr) for tr in trajs]
        est = self._oracle(domain, rng).collect(values)
        self._spend(accountant, trajs)
        return est / len(trajs)

    def _collect_lengths(self, trajs, max_len, rng, accountant) -> np.ndarray:
        bins = self.config.n_length_bins
        if not trajs:
            return np.zeros(bins)
        values = [self._length_bin(len(tr), max_len) for tr in trajs]
        est = self._oracle(bins, rng).collect(values)
        self._spend(accountant, trajs)
        return est / len(trajs)

    def _length_bin(self, length: int, max_len: int) -> int:
        bins = self.config.n_length_bins
        frac = min(length, max_len) / max(1, max_len)
        return min(bins - 1, int(frac * bins))

    def _bin_to_length(self, b: int, max_len: int, rng) -> int:
        bins = self.config.n_length_bins
        lo = int(b / bins * max_len)
        hi = max(lo + 1, int((b + 1) / bins * max_len))
        return max(1, int(rng.integers(lo, hi + 1)))

    def _oracle(self, domain, rng) -> OptimizedUnaryEncoding:
        return OptimizedUnaryEncoding(
            domain, self.config.epsilon, rng=rng, mode=self.config.oracle_mode
        )

    @staticmethod
    def _spend(accountant, trajs) -> None:
        if accountant is None:
            return
        for tr in trajs:
            accountant.spend(tr.user_id, 0, accountant.epsilon)

    # ------------------------------------------------------------------ #
    # synthesis
    # ------------------------------------------------------------------ #
    def _synthesize(
        self, dataset, grid, space, model, start_dist, end_dist, length_dist,
        max_len, rng,
    ) -> StreamDataset:
        n = len(dataset.trajectories)
        horizon = max_len + 1
        trajectories = []
        lengths = rng.choice(length_dist.size, size=n, p=length_dist)
        starts = rng.choice(start_dist.size, size=n, p=start_dist)
        for uid in range(n):
            target_len = self._bin_to_length(int(lengths[uid]), max_len, rng)
            cells = [int(starts[uid])]
            for step in range(target_len - 1):
                origin = cells[-1]
                probs, _quit = model.row_distribution(origin)
                dests = space.out_destinations(origin)
                if step == target_len - 2:
                    # Final step: bias toward the end-cell distribution.
                    weights = probs * np.asarray([end_dist[d] for d in dests])
                    total = weights.sum()
                    probs = weights / total if total > 0 else probs
                cells.append(int(dests[int(rng.choice(len(dests), p=probs))]))
            trajectories.append(CellTrajectory(0, cells, user_id=uid))
        return StreamDataset(
            grid,
            trajectories,
            n_timestamps=horizon,
            name=f"LDPTrace({dataset.name})",
        )
