"""LDP-IDS stream-publication strategies adapted to trajectory streams.

Implements the four w-event ε-LDP strategies of Ren et al. (SIGMOD 2022) on
top of the framework's adaptation used by the paper (Section V-A):

* users report **movement transition states only** (no entering/quitting);
* the released per-timestamp statistic is the frequency vector over the
  movement state space;
* synthesis uses the same first-order Markov generator as RetraSyn, seeded
  once from the origin marginal of the first release, with streams that
  never terminate and no size adjustment.

Each strategy follows LDP-IDS's **two-step private mechanism** at every
timestamp: first a *dissimilarity* estimate decides between publishing fresh
statistics and re-releasing the previous ones; then, on publication, the
remaining budget/users are spent.

Budget split (budget division): half of ε is reserved for dissimilarity
(``ε/(2w)`` per timestamp) and half for publications, exactly as in the
original BD/BA mechanisms.  Population division substitutes user groups for
budget shares and relies on a **fixed-population assumption** — group sizes
are derived from the initial active-user count ``N_0`` — which is precisely
the limitation the paper identifies in dynamic streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.mobility_model import GlobalMobilityModel
from repro.core.retrasyn import SynthesisRun
from repro.core.synthesis import Synthesizer
from repro.exceptions import ConfigurationError
from repro.ldp.accountant import PrivacyAccountant
from repro.ldp.oue import OptimizedUnaryEncoding, oue_variance
from repro.rng import RngLike, ensure_rng
from repro.stream.encoder import UserSideEncoder
from repro.stream.events import StateKind
from repro.stream.state_space import TransitionStateSpace
from repro.stream.stream import StreamDataset

_STRATEGIES = ("lbd", "lba", "lpd", "lpa")


class AbsorptionSchedule:
    """Unit bookkeeping for Budget/Population Absorption (LBA / LPA).

    Each timestamp contributes one *unit* of publication budget (``ε/(2w)``
    for LBA, ``N0/(2w)`` users for LPA).  Skipped timestamps leave their
    units to be absorbed by the next publication; a publication that
    absorbs ``k`` units *nullifies* the following ``k − 1`` timestamps so
    the sliding-window invariant of the original Budget Absorption
    mechanism (Kellaris et al., 2014) holds.
    """

    def __init__(self) -> None:
        self.units = 0
        self.nullified = 0

    def tick(self) -> bool:
        """Advance one timestamp; returns whether publishing is allowed."""
        self.units += 1
        if self.nullified > 0:
            self.nullified -= 1
            return False
        return True

    def publish(self) -> int:
        """Consume all accumulated units; returns how many were absorbed."""
        used = self.units
        self.units = 0
        self.nullified = max(0, used - 1)
        return used


@dataclass
class LdpIdsConfig:
    """Configuration of an LDP-IDS baseline run."""

    epsilon: float = 1.0
    w: int = 20
    strategy: str = "lbd"
    oracle_mode: str = "fast"
    track_privacy: bool = True
    seed: RngLike = None

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.w < 1:
            raise ConfigurationError(f"w must be >= 1, got {self.w}")

    @property
    def label(self) -> str:
        return self.strategy.upper()

    @property
    def division(self) -> str:
        return "budget" if self.strategy in ("lbd", "lba") else "population"


class _LdpIds:
    """Shared driver for all four strategies."""

    def __init__(self, config: LdpIdsConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    def run(self, dataset: StreamDataset) -> SynthesisRun:
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        space = TransitionStateSpace(dataset.grid, include_entering_quitting=False)
        encoder = UserSideEncoder(space)
        model = GlobalMobilityModel(space)
        synthesizer = Synthesizer(model, lam=1.0, enable_termination=False, rng=rng)
        accountant = (
            PrivacyAccountant(cfg.epsilon, cfg.w) if cfg.track_privacy else None
        )

        release = np.zeros(space.size)  # r_{t-1}, the last published stats
        have_release = False
        reporters_per_t: list[int] = []

        # Absorption schedules (reset per run so instances are reusable).
        self._lba = AbsorptionSchedule()
        self._lpa = AbsorptionSchedule()

        # Budget-division bookkeeping.
        eps_dissim = cfg.epsilon / (2 * cfg.w)
        pub_spends: list[float] = []  # publication budget per past timestamp

        # Population-division bookkeeping (fixed-set assumption).
        n0 = max(1, dataset.n_active_at(0))
        m_dissim = max(1, int(round(n0 / (2 * cfg.w))))
        pub_users_spent: list[int] = []  # publication users per past timestamp
        last_report: dict[int, int] = {}

        start = time.perf_counter()
        for t in range(dataset.n_timestamps):
            moves = [
                (uid, s)
                for uid, s in dataset.participants_at(t)
                if s.kind is StateKind.MOVE
            ]
            n_reporters_t = 0

            if cfg.division == "budget":
                release, have_release, published, n_rep = self._budget_step(
                    t, moves, release, have_release, space, encoder, rng,
                    eps_dissim, pub_spends, accountant,
                )
                n_reporters_t = n_rep
            else:
                release, have_release, published, n_rep = self._population_step(
                    t, moves, release, have_release, space, encoder, rng,
                    n0, m_dissim, pub_users_spent, last_report, accountant,
                )
                n_reporters_t = n_rep
            reporters_per_t.append(n_reporters_t)

            # Model: the released stats fully define the current model.
            if have_release:
                model.set_all(release)

            # Synthesis: seed once, then free-run the Markov chain.
            if t == 0:
                init_probs = self._origin_marginal(space, release)
                synthesizer.spawn_from_distribution(
                    0, dataset.n_active_at(0), init_probs
                )
            else:
                synthesizer.step(t, None)

        total_runtime = time.perf_counter() - start
        synthetic = StreamDataset(
            dataset.grid,
            synthesizer.all_trajectories(),
            n_timestamps=dataset.n_timestamps,
            name=f"{cfg.label}({dataset.name})",
        )
        return SynthesisRun(
            synthetic=synthetic,
            config=cfg,
            accountant=accountant,
            timings={},
            reporters_per_timestamp=reporters_per_t,
            total_runtime=total_runtime,
        )

    # ------------------------------------------------------------------ #
    # budget division (LBD / LBA)
    # ------------------------------------------------------------------ #
    def _budget_step(
        self, t, moves, release, have_release, space, encoder, rng,
        eps_dissim, pub_spends, accountant,
    ):
        cfg = self.config
        n = len(moves)
        reported = 0
        if n == 0:
            pub_spends.append(0.0)
            return release, have_release, False, 0

        # Step 1: dissimilarity estimate with ε/(2w).
        states = [s for _u, s in moves]
        oracle1 = OptimizedUnaryEncoding(
            space.size, eps_dissim, rng=rng, mode=cfg.oracle_mode
        )
        est = encoder.collect_counts(oracle1, states) / n
        if accountant is not None:
            accountant.spend_many((u for u, _s in moves), t, eps_dissim)
        reported = n
        dis = max(
            0.0,
            float(np.mean((est - release) ** 2)) - oue_variance(eps_dissim, n),
        )

        # Step 2: candidate publication budget.
        eps_pub_cap = cfg.epsilon / 2.0
        window_pub = sum(pub_spends[-(cfg.w - 1):]) if cfg.w > 1 else 0.0
        eps_rm = max(0.0, eps_pub_cap - window_pub)
        if cfg.strategy == "lbd":
            candidate = eps_rm / 2.0
        else:  # lba
            if self._lba.tick():
                unit = cfg.epsilon / (2 * cfg.w)
                candidate = min(self._lba.units * unit, eps_pub_cap, eps_rm)
            else:
                candidate = 0.0

        err_pub = oue_variance(candidate, n) if candidate > 1e-12 else float("inf")
        publish = not have_release or dis > err_pub
        if publish and candidate > 1e-12:
            oracle2 = OptimizedUnaryEncoding(
                space.size, candidate, rng=rng, mode=cfg.oracle_mode
            )
            est2 = encoder.collect_counts(oracle2, states) / n
            if accountant is not None:
                accountant.spend_many((u for u, _s in moves), t, candidate)
            release = est2
            have_release = True
            pub_spends.append(candidate)
            if cfg.strategy == "lba":
                self._lba.publish()
        else:
            pub_spends.append(0.0)
        return release, have_release, publish, reported

    # ------------------------------------------------------------------ #
    # population division (LPD / LPA)
    # ------------------------------------------------------------------ #
    def _population_step(
        self, t, moves, release, have_release, space, encoder, rng,
        n0, m_dissim, pub_users_spent, last_report, accountant,
    ):
        cfg = self.config
        available = [
            (u, s)
            for u, s in moves
            if u not in last_report or t - last_report[u] >= cfg.w
        ]
        if not available:
            pub_users_spent.append(0)
            return release, have_release, False, 0
        rng.shuffle(available)

        # Step 1: dissimilarity with a small full-ε group.
        m1 = min(m_dissim, len(available))
        dissim_group = available[:m1]
        rest = available[m1:]
        oracle = OptimizedUnaryEncoding(
            space.size, cfg.epsilon, rng=rng, mode=cfg.oracle_mode
        )
        est = encoder.collect_counts(oracle, [s for _u, s in dissim_group]) / m1
        for u, _s in dissim_group:
            last_report[u] = t
            if accountant is not None:
                accountant.spend(u, t, cfg.epsilon)
        reported = m1
        dis = max(
            0.0,
            float(np.mean((est - release) ** 2)) - oue_variance(cfg.epsilon, m1),
        )

        # Step 2: candidate publication group size (fixed-set arithmetic).
        pub_cap = n0 // 2
        window_used = sum(pub_users_spent[-(cfg.w - 1):]) if cfg.w > 1 else 0
        n_rm = max(0, pub_cap - window_used)
        if cfg.strategy == "lpd":
            candidate = n_rm // 2
        else:  # lpa
            if self._lpa.tick():
                unit = max(1, n0 // (2 * cfg.w))
                candidate = min(self._lpa.units * unit, pub_cap, n_rm)
            else:
                candidate = 0

        err_pub = (
            oue_variance(cfg.epsilon, candidate) if candidate >= 1 else float("inf")
        )
        publish = not have_release or dis > err_pub
        if publish and candidate >= 1 and rest:
            group = rest[: min(candidate, len(rest))]
            oracle2 = OptimizedUnaryEncoding(
                space.size, cfg.epsilon, rng=rng, mode=cfg.oracle_mode
            )
            est2 = encoder.collect_counts(oracle2, [s for _u, s in group]) / len(group)
            for u, _s in group:
                last_report[u] = t
                if accountant is not None:
                    accountant.spend(u, t, cfg.epsilon)
            reported += len(group)
            release = est2
            have_release = True
            pub_users_spent.append(len(group))
            if cfg.strategy == "lpa":
                self._lpa.publish()
        else:
            pub_users_spent.append(0)
        return release, have_release, publish, reported

    # ------------------------------------------------------------------ #
    @staticmethod
    def _origin_marginal(space: TransitionStateSpace, release: np.ndarray) -> np.ndarray:
        """Start-cell distribution: mass of movements leaving each cell."""
        f = np.clip(release, 0.0, None)
        marginal = np.zeros(space.n_cells)
        for origin in range(space.n_cells):
            marginal[origin] = f[space.out_move_indices(origin)].sum()
        total = marginal.sum()
        if total <= 0:
            return np.full(space.n_cells, 1.0 / space.n_cells)
        return marginal / total


class LBD(_LdpIds):
    """Budget division with exponentially decaying publication budgets."""

    def __init__(self, epsilon: float = 1.0, w: int = 20, **kwargs) -> None:
        super().__init__(LdpIdsConfig(epsilon=epsilon, w=w, strategy="lbd", **kwargs))


class LBA(_LdpIds):
    """Budget absorption: uniform publication budgets, skips absorbed."""

    def __init__(self, epsilon: float = 1.0, w: int = 20, **kwargs) -> None:
        super().__init__(LdpIdsConfig(epsilon=epsilon, w=w, strategy="lba", **kwargs))


class LPD(_LdpIds):
    """Population analogue of LBD (user groups instead of budget shares)."""

    def __init__(self, epsilon: float = 1.0, w: int = 20, **kwargs) -> None:
        super().__init__(LdpIdsConfig(epsilon=epsilon, w=w, strategy="lpd", **kwargs))


class LPA(_LdpIds):
    """Population analogue of LBA."""

    def __init__(self, epsilon: float = 1.0, w: int = 20, **kwargs) -> None:
        super().__init__(LdpIdsConfig(epsilon=epsilon, w=w, strategy="lpa", **kwargs))


def make_baseline(name: str, epsilon: float = 1.0, w: int = 20, **kwargs) -> _LdpIds:
    """Factory: build a baseline by its paper name (LBD/LBA/LPD/LPA)."""
    table = {"lbd": LBD, "lba": LBA, "lpd": LPD, "lpa": LPA}
    key = name.lower()
    if key not in table:
        raise ConfigurationError(f"unknown baseline {name!r}")
    return table[key](epsilon=epsilon, w=w, **kwargs)
