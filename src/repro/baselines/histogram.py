"""Generic LDP-IDS histogram stream publisher.

LDP-IDS (Ren et al., SIGMOD 2022) is natively a *histogram* publisher: at
every timestamp each user holds one value from a finite domain, and the
curator releases an estimated frequency vector under w-event ε-LDP.  The
trajectory baselines in :mod:`repro.baselines.ldp_ids` are an adaptation of
this machinery to transition states; this module provides the original,
domain-agnostic form so the library also covers the baseline's own task
(e.g. publishing visited-cell histograms, app-usage counters, or any
categorical stream).

The two-step mechanism per timestamp:

1. **dissimilarity estimation** — a cheap private estimate ``ĉ_t`` decides
   whether the stream drifted from the last release: ``dis = mean((ĉ_t −
   r_{t−1})²) − Var`` (variance-corrected, clamped at 0);
2. **publish or approximate** — if ``dis`` exceeds the error of a fresh
   publication, publish with the strategy's budget/user allotment;
   otherwise re-release ``r_{t−1}`` for free.

Strategies: ``lbd`` (budget distribution), ``lba`` (budget absorption),
``lpd``/``lpa`` (population analogues with a fixed-set assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.baselines.ldp_ids import AbsorptionSchedule, LdpIdsConfig
from repro.exceptions import ConfigurationError
from repro.ldp.accountant import PrivacyAccountant
from repro.ldp.oue import OptimizedUnaryEncoding, oue_variance
from repro.rng import ensure_rng


@dataclass
class HistogramRelease:
    """One timestamp's published histogram."""

    t: int
    frequencies: np.ndarray
    published: bool  # False = approximated with the previous release
    n_reporters: int


@dataclass
class HistogramRun:
    """Output of a full histogram-publication run."""

    releases: list[HistogramRelease] = field(default_factory=list)
    accountant: Optional[PrivacyAccountant] = None

    @property
    def n_published(self) -> int:
        return sum(1 for r in self.releases if r.published)

    def frequency_matrix(self) -> np.ndarray:
        """``(T, d)`` matrix of released frequencies."""
        return np.stack([r.frequencies for r in self.releases])


class HistogramStreamPublisher:
    """Publish per-timestamp histograms of a categorical stream.

    Parameters
    ----------
    domain_size:
        Cardinality of the users' value domain.
    config:
        An :class:`~repro.baselines.ldp_ids.LdpIdsConfig` (ε, w, strategy).
    """

    def __init__(self, domain_size: int, config: LdpIdsConfig) -> None:
        if domain_size < 1:
            raise ConfigurationError(f"domain_size must be >= 1, got {domain_size}")
        self.domain_size = int(domain_size)
        self.config = config

    # ------------------------------------------------------------------ #
    def run(
        self,
        stream: Sequence[Sequence[tuple[int, int]]],
    ) -> HistogramRun:
        """Process a full stream.

        ``stream[t]`` is the list of ``(user_id, value)`` pairs reported at
        timestamp ``t``; values lie in ``[0, domain_size)``.
        """
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        accountant = (
            PrivacyAccountant(cfg.epsilon, cfg.w) if cfg.track_privacy else None
        )
        release = np.zeros(self.domain_size)
        have_release = False
        out = HistogramRun(accountant=accountant)

        eps_dissim = cfg.epsilon / (2 * cfg.w)
        pub_spends: list[float] = []
        pub_users: list[int] = []
        schedule = AbsorptionSchedule()
        n0 = max(1, len(stream[0]) if stream else 1)
        m_dissim = max(1, int(round(n0 / (2 * cfg.w))))
        last_report: dict[int, int] = {}

        for t, reports in enumerate(stream):
            if cfg.division == "budget":
                release, have_release, published, n_rep = self._budget_step(
                    t, list(reports), release, have_release, rng,
                    eps_dissim, pub_spends, schedule, accountant,
                )
            else:
                release, have_release, published, n_rep = self._population_step(
                    t, list(reports), release, have_release, rng,
                    n0, m_dissim, pub_users, schedule, last_report, accountant,
                )
            out.releases.append(
                HistogramRelease(
                    t=t,
                    frequencies=release.copy(),
                    published=published,
                    n_reporters=n_rep,
                )
            )
        return out

    # ------------------------------------------------------------------ #
    def _collect(self, rng, values, epsilon) -> np.ndarray:
        oracle = OptimizedUnaryEncoding(
            self.domain_size, epsilon, rng=rng, mode=self.config.oracle_mode
        )
        return oracle.collect(values) / max(1, len(values))

    def _budget_step(
        self, t, reports, release, have_release, rng,
        eps_dissim, pub_spends, schedule, accountant,
    ):
        cfg = self.config
        n = len(reports)
        if n == 0:
            pub_spends.append(0.0)
            if cfg.strategy == "lba":
                schedule.tick()
            return release, have_release, False, 0
        values = [v for _u, v in reports]
        est = self._collect(rng, values, eps_dissim)
        if accountant is not None:
            accountant.spend_many((u for u, _v in reports), t, eps_dissim)
        dis = max(
            0.0, float(np.mean((est - release) ** 2)) - oue_variance(eps_dissim, n)
        )

        eps_cap = cfg.epsilon / 2.0
        window = sum(pub_spends[-(cfg.w - 1):]) if cfg.w > 1 else 0.0
        eps_rm = max(0.0, eps_cap - window)
        if cfg.strategy == "lbd":
            candidate = eps_rm / 2.0
        else:
            if schedule.tick():
                candidate = min(schedule.units * cfg.epsilon / (2 * cfg.w), eps_cap, eps_rm)
            else:
                candidate = 0.0

        err_pub = oue_variance(candidate, n) if candidate > 1e-12 else float("inf")
        publish = not have_release or dis > err_pub
        if publish and candidate > 1e-12:
            release = self._collect(rng, values, candidate)
            have_release = True
            if accountant is not None:
                accountant.spend_many((u for u, _v in reports), t, candidate)
            pub_spends.append(candidate)
            if cfg.strategy == "lba":
                schedule.publish()
            return release, have_release, True, n
        pub_spends.append(0.0)
        return release, have_release, False, n

    def _population_step(
        self, t, reports, release, have_release, rng,
        n0, m_dissim, pub_users, schedule, last_report, accountant,
    ):
        cfg = self.config
        available = [
            (u, v)
            for u, v in reports
            if u not in last_report or t - last_report[u] >= cfg.w
        ]
        if not available:
            pub_users.append(0)
            if cfg.strategy == "lpa":
                schedule.tick()
            return release, have_release, False, 0
        rng.shuffle(available)
        m1 = min(m_dissim, len(available))
        dissim, rest = available[:m1], available[m1:]
        est = self._collect(rng, [v for _u, v in dissim], cfg.epsilon)
        for u, _v in dissim:
            last_report[u] = t
            if accountant is not None:
                accountant.spend(u, t, cfg.epsilon)
        dis = max(
            0.0, float(np.mean((est - release) ** 2)) - oue_variance(cfg.epsilon, m1)
        )

        cap = n0 // 2
        window = sum(pub_users[-(cfg.w - 1):]) if cfg.w > 1 else 0
        n_rm = max(0, cap - window)
        if cfg.strategy == "lpd":
            candidate = n_rm // 2
        else:
            if schedule.tick():
                candidate = min(schedule.units * max(1, n0 // (2 * cfg.w)), cap, n_rm)
            else:
                candidate = 0

        err_pub = oue_variance(cfg.epsilon, candidate) if candidate >= 1 else float("inf")
        publish = not have_release or dis > err_pub
        if publish and candidate >= 1 and rest:
            group = rest[: min(candidate, len(rest))]
            release = self._collect(rng, [v for _u, v in group], cfg.epsilon)
            have_release = True
            for u, _v in group:
                last_report[u] = t
                if accountant is not None:
                    accountant.spend(u, t, cfg.epsilon)
            pub_users.append(len(group))
            if cfg.strategy == "lpa":
                schedule.publish()
            return release, have_release, True, m1 + len(group)
        pub_users.append(0)
        return release, have_release, False, m1
