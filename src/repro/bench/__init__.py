"""End-to-end benchmark drivers (``repro bench ...``).

Unlike :mod:`benchmarks` (the pytest-benchmark harness regenerating the
paper's tables), this package measures the *system boundary*: sustained
report throughput and latency through the serve/HTTP ingress, reported
as machine-readable artifacts CI gates on.
"""

from repro.bench.load import LoadResult, LoadSpec, run_bench_serve, run_load

__all__ = ["LoadResult", "LoadSpec", "run_bench_serve", "run_load"]
