"""Saturating end-to-end load harness for the serve/HTTP ingress.

``repro bench serve`` replays a synthetic population of up to hundreds of
thousands of users against the curator through three boundaries:

* ``inproc`` — an :class:`~repro.api.session.IngestSession` driven
  directly, no sockets: the ceiling the transports are measured against.
* ``http`` — a real :class:`~repro.api.http.HttpIngress` on a background
  event loop, driven by :class:`~repro.api.client.Client` over real
  sockets; ``schema_version`` selects the wire encoding (1 = base64
  JSON reference, 2 = length-prefixed binary frames with pipelining).
* ``subprocess`` — ``repro serve --http`` booted as a child process (the
  deployment shape), with peak RSS read from ``/proc/<pid>/status``.

Every mode replays the *same* deterministic workload, so their synthetic
outputs must be bit-identical — :func:`run_bench_serve` checks that while
measuring sustained reports/sec, p50/p95/p99 ingest→synthesis latency
(one sample per request: the time from submission until the ack that the
covered rounds were synthesized), the assembler's queue-depth high-water
mark, and peak RSS.  The packaged dict is the ``BENCH_serve.json``
artifact CI uploads and the full run gates on (binary frames ≥2x the
JSON v1 reference).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.api import schema
from repro.api.specs import SessionSpec
from repro.exceptions import ConfigurationError
from repro.geo.grid import unit_grid
from repro.stream.reports import KIND_ENTER, KIND_MOVE, KIND_QUIT, ReportBatch
from repro.stream.state_space import TransitionStateSpace

MODES = ("inproc", "http", "subprocess")

_LISTEN_RE = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")


@dataclass(frozen=True)
class LoadSpec:
    """One load-harness run: workload shape + boundary + wire encoding."""

    n_users: int = 100_000
    horizon: int = 8  # timestamps; >= 3 (enter, >=1 move round, quit)
    k: int = 6
    epsilon: float = 1.0
    w: int = 10
    seed: int = 0
    mode: str = "inproc"
    schema_version: int = schema.SCHEMA_VERSION
    pipeline: int = 4  # timestamps per pipelined request (frame versions)
    ingest_consumers: int = 1
    #: Collection-plane shape behind the boundary: >1 shards (or the
    #: "distributed" executor at any K) routes the session through the
    #: sharded engine, so the load harness can saturate the socket-framed
    #: worker-service plane end to end.
    n_shards: int = 1
    shard_executor: str = "serial"
    #: Transport-plane isolation: hold the watermark open (``max_lateness
    #: = horizon``) so no timestamp closes while the load is applied —
    #: the sustained window then measures pure ingest (HTTP + decode +
    #: buffering) and synthesis runs at the final flush, outside it.
    defer_closes: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.schema_version not in schema.SUPPORTED_VERSIONS:
            raise ConfigurationError(
                f"schema_version must be in {schema.SUPPORTED_VERSIONS}, "
                f"got {self.schema_version}"
            )
        if self.n_users < 1:
            raise ConfigurationError(f"n_users must be >= 1, got {self.n_users}")
        if self.horizon < 3:
            raise ConfigurationError(f"horizon must be >= 3, got {self.horizon}")
        if self.pipeline < 1:
            raise ConfigurationError(f"pipeline must be >= 1, got {self.pipeline}")


@dataclass
class LoadResult:
    """Measured outcome of one :func:`run_load` call."""

    mode: str
    schema_version: int
    n_users: int
    horizon: int
    n_reports: int
    wall_seconds: float
    reports_per_sec: float
    latency_ms: dict = field(default_factory=dict)  # p50/p95/p99
    backlog_high_water: int = 0
    peak_rss_mb: float = 0.0
    streams: Optional[list] = None  # (start_time, cells) pairs, for bit-checks

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "schema_version": self.schema_version,
            "n_users": self.n_users,
            "horizon": self.horizon,
            "n_reports": self.n_reports,
            "wall_seconds": round(self.wall_seconds, 4),
            "reports_per_sec": round(self.reports_per_sec, 1),
            "latency_ms": {k: round(v, 3) for k, v in self.latency_ms.items()},
            "backlog_high_water": self.backlog_high_water,
            "peak_rss_mb": round(self.peak_rss_mb, 1),
        }

    def report_lines(self) -> list[str]:
        lat = self.latency_ms
        return [
            f"[{self.mode} v{self.schema_version}] "
            f"{self.n_reports:,} reports in {self.wall_seconds:.2f}s "
            f"= {self.reports_per_sec:,.0f} reports/s",
            f"  latency p50/p95/p99      "
            f"{lat.get('p50', 0):.1f} / {lat.get('p95', 0):.1f} / "
            f"{lat.get('p99', 0):.1f} ms",
            f"  backlog high-water       {self.backlog_high_water:,} rows",
            f"  peak RSS                 {self.peak_rss_mb:,.0f} MB",
        ]


# ---------------------------------------------------------------------- #
# deterministic synthetic workload
# ---------------------------------------------------------------------- #
def synthetic_rounds(spec: LoadSpec) -> list[tuple]:
    """The replayed workload: one pre-encoded columnar round per timestamp.

    ``n_users`` users all enter at ``t=0`` in random cells, emit one
    random legal movement report per timestamp, and quit at the final
    timestamp — the steady-state-saturation shape (every round carries
    ``n_users`` rows).  Entirely derived from ``seed``, so every boundary
    replays byte-identical batches.
    """
    rng = np.random.default_rng(spec.seed)
    space = TransitionStateSpace(unit_grid(spec.k))
    uids = np.arange(spec.n_users, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    rounds: list[tuple] = []
    for t in range(spec.horizon):
        if t == 0:
            cells = rng.integers(0, space.n_cells, size=spec.n_users)
            idx = space.enter_indices[0] + cells
            kinds = np.full(spec.n_users, KIND_ENTER, dtype=np.int8)
            entered, quitted, n_active = uids, empty, spec.n_users
        elif t == spec.horizon - 1:
            cells = rng.integers(0, space.n_cells, size=spec.n_users)
            idx = space.quit_indices[0] + cells
            kinds = np.full(spec.n_users, KIND_QUIT, dtype=np.int8)
            entered, quitted, n_active = empty, uids, 0
        else:
            idx = rng.integers(0, space.n_move, size=spec.n_users)
            kinds = np.full(spec.n_users, KIND_MOVE, dtype=np.int8)
            entered, quitted, n_active = empty, empty, spec.n_users
        batch = ReportBatch(uids, idx.astype(np.int64), kinds)
        rounds.append((t, batch, entered, quitted, n_active))
    return rounds


def _workload_lam(spec: LoadSpec) -> float:
    """λ of the workload: every user is alive for the whole horizon."""
    return float(max(1.0, spec.horizon - 1))


def _session_spec(spec: LoadSpec) -> SessionSpec:
    """The session every boundary runs — mirrors `repro serve` defaults."""
    return SessionSpec.from_flat(
        epsilon=spec.epsilon,
        w=spec.w,
        seed=spec.seed,
        engine="vectorized",
        transport="ingest",
        ingest_consumers=spec.ingest_consumers,
        max_lateness=spec.horizon if spec.defer_closes else 0,
        n_shards=spec.n_shards,
        shard_executor=spec.shard_executor,
        track_privacy=False,  # matches the subprocess server's --no-audit
    )


def _chunks(rounds: list, size: int) -> list[list]:
    return [rounds[i : i + size] for i in range(0, len(rounds), size)]


def _percentiles(latencies_s: list[float]) -> dict:
    arr = np.asarray(latencies_s, dtype=np.float64) * 1e3
    if arr.size == 0:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
    }


def _self_peak_rss_mb() -> float:
    import resource

    # ru_maxrss is KiB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _pid_peak_rss_mb(pid: int) -> float:
    try:
        for line in Path(f"/proc/{pid}/status").read_text().splitlines():
            if line.startswith("VmHWM:"):
                return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        pass
    return 0.0


def _streams(dataset) -> list:
    return [(int(s.start_time), list(s.cells)) for s in dataset]


# ---------------------------------------------------------------------- #
# boundary drivers
# ---------------------------------------------------------------------- #
def _run_inproc(
    spec: LoadSpec, rounds: list, lam: float, collect_streams: bool = True
) -> LoadResult:
    from repro.api.session import create_session

    session = create_session(_session_spec(spec), unit_grid(spec.k), lam=lam)
    latencies: list[float] = []
    start = time.perf_counter()
    for group in _chunks(rounds, spec.pipeline):
        t0 = time.perf_counter()
        for t, batch, entered, quitted, n_active in group:
            session.submit_batch(
                t, batch, newly_entered=entered, quitted=quitted,
                n_real_active=n_active,
            )
        session.advance()
        latencies.append(time.perf_counter() - t0)
    submit_wall = time.perf_counter() - start
    session.close()  # flushes the tail (everything, when closes deferred)
    total_wall = time.perf_counter() - start
    wall = submit_wall if spec.defer_closes else total_wall
    backlog = session.stats()["ingest"]["backlog_high_water"]
    streams = (
        _streams(session.result(spec.horizon).synthetic)
        if collect_streams else None
    )
    n_reports = sum(len(r[1]) for r in rounds)
    return LoadResult(
        mode="inproc", schema_version=spec.schema_version,
        n_users=spec.n_users, horizon=spec.horizon, n_reports=n_reports,
        wall_seconds=wall, reports_per_sec=n_reports / wall,
        latency_ms=_percentiles(latencies),
        backlog_high_water=int(backlog),
        peak_rss_mb=_self_peak_rss_mb(),
        streams=streams,
    )


class _ThreadedIngress:
    """An :class:`HttpIngress` serving from a background thread's loop."""

    def __init__(self, session) -> None:
        import asyncio
        import threading

        from repro.api.http import HttpIngress

        self.ingress = HttpIngress(session)
        self._ready = threading.Event()

        def _run() -> None:
            async def main() -> None:
                await self.ingress.start()
                self._ready.set()
                await self.ingress.serve_until_shutdown()

            asyncio.run(main())

        self._thread = threading.Thread(target=_run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):  # pragma: no cover - diagnostics
            raise RuntimeError("ingress did not come up")

    @property
    def port(self) -> int:
        return self.ingress.port

    def join(self) -> None:
        self._thread.join(10)


def _drive_client(client, spec: LoadSpec, rounds: list) -> tuple:
    """Replay the workload through a connected client; returns timings."""
    client.hello()
    if spec.schema_version != client.schema_version:
        # Force the JSON v1 reference encoding against a v2 server.
        client.schema_version = spec.schema_version
    latencies: list[float] = []
    start = time.perf_counter()
    for group in _chunks(rounds, spec.pipeline):
        t0 = time.perf_counter()
        client.submit_batches(
            [(t, b, e, q, n) for t, b, e, q, n in group]
        )
        latencies.append(time.perf_counter() - t0)
    submit_wall = time.perf_counter() - start
    client.close()  # flushes the tail (everything, when closes deferred)
    total_wall = time.perf_counter() - start
    wall = submit_wall if spec.defer_closes else total_wall
    return wall, latencies


def _run_http(
    spec: LoadSpec, rounds: list, lam: float, collect_streams: bool = True
) -> LoadResult:
    from repro.api.client import Client
    from repro.api.session import create_session

    session = create_session(_session_spec(spec), unit_grid(spec.k), lam=lam)
    server = _ThreadedIngress(session)
    client = Client("127.0.0.1", server.port)
    try:
        wall, latencies = _drive_client(client, spec, rounds)
        stats = client.stats()
        synthetic = client.result() if collect_streams else None
    finally:
        try:
            client.shutdown_server()
        except Exception:
            pass
        server.join()
    n_reports = sum(len(r[1]) for r in rounds)
    return LoadResult(
        mode="http", schema_version=spec.schema_version,
        n_users=spec.n_users, horizon=spec.horizon, n_reports=n_reports,
        wall_seconds=wall, reports_per_sec=n_reports / wall,
        latency_ms=_percentiles(latencies),
        backlog_high_water=int(stats["ingest"]["backlog_high_water"]),
        peak_rss_mb=_self_peak_rss_mb(),
        streams=None if synthetic is None else _streams(synthetic),
    )


def seed_dataset(spec: LoadSpec):
    """The tiny dataset a subprocess server boots from (grid + λ donor)."""
    from repro.datasets.synthetic import make_random_walks

    return make_random_walks(
        k=spec.k, n_streams=40, n_timestamps=spec.horizon, seed=spec.seed,
        name="bench-serve-seed",
    )


def _run_subprocess(
    spec: LoadSpec, rounds: list, workdir: Path, collect_streams: bool = True
) -> LoadResult:
    """Boot ``repro serve --http 0`` as a child process and drive it."""
    from repro.api.client import Client
    from repro.datasets.io import save_stream_dataset

    workdir.mkdir(parents=True, exist_ok=True)
    dataset_path = workdir / "bench_serve_seed.npz"
    save_stream_dataset(seed_dataset(spec), dataset_path)

    repo_src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(repo_src), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--input", str(dataset_path),
            "--http", "0",
            "--epsilon", str(spec.epsilon),
            "--w", str(spec.w),
            "--seed", str(spec.seed),
            "--ingest-consumers", str(spec.ingest_consumers),
            "--shards", str(spec.n_shards),
            "--shard-executor", spec.shard_executor,
            "--no-audit",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        match = None
        seen: list[str] = []
        for _ in range(50):
            line = proc.stdout.readline()
            if not line:
                break
            seen.append(line)
            match = _LISTEN_RE.search(line)
            if match:
                break
        if not match:
            raise RuntimeError(
                f"server did not announce a port: {''.join(seen)!r}"
            )
        client = Client("127.0.0.1", int(match.group(1)))
        wall, latencies = _drive_client(client, spec, rounds)
        stats = client.stats()
        synthetic = client.result() if collect_streams else None
        peak_rss = _pid_peak_rss_mb(proc.pid)
        client.shutdown_server()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on error
            proc.kill()
            proc.wait(timeout=10)
    n_reports = sum(len(r[1]) for r in rounds)
    return LoadResult(
        mode="subprocess", schema_version=spec.schema_version,
        n_users=spec.n_users, horizon=spec.horizon, n_reports=n_reports,
        wall_seconds=wall, reports_per_sec=n_reports / wall,
        latency_ms=_percentiles(latencies),
        backlog_high_water=int(stats["ingest"]["backlog_high_water"]),
        peak_rss_mb=peak_rss,
        streams=None if synthetic is None else _streams(synthetic),
    )


def run_load(
    spec: LoadSpec,
    rounds: Optional[list] = None,
    lam: Optional[float] = None,
    workdir: Optional[Path] = None,
    collect_streams: bool = True,
) -> LoadResult:
    """Run one load measurement; ``rounds`` may be shared across calls.

    ``collect_streams=False`` skips fetching/materialising the synthetic
    output (throughput repeats don't need it and it is not free).
    """
    if rounds is None:
        rounds = synthetic_rounds(spec)
    if lam is None:
        lam = _workload_lam(spec)
    if spec.mode == "inproc":
        return _run_inproc(spec, rounds, lam, collect_streams)
    if spec.mode == "http":
        return _run_http(spec, rounds, lam, collect_streams)
    import tempfile

    if workdir is not None:
        return _run_subprocess(spec, rounds, workdir, collect_streams)
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        return _run_subprocess(spec, rounds, Path(tmp), collect_streams)


# ---------------------------------------------------------------------- #
# the full benchmark: all boundaries, both encodings, one artifact
# ---------------------------------------------------------------------- #
def run_bench_serve(
    n_users: int = 100_000,
    horizon: int = 8,
    k: int = 6,
    epsilon: float = 1.0,
    w: int = 10,
    seed: int = 0,
    pipeline: int = 4,
    ingest_consumers: int = 1,
    modes: tuple = ("inproc", "http", "subprocess"),
    quick: bool = False,
    repeats: Optional[int] = None,
    workdir: Optional[Path] = None,
) -> dict:
    """Measure every boundary over one shared workload; package the artifact.

    Two comparisons come out of the ``http`` boundary:

    * ``http_v1`` / ``http_v2`` — end-to-end: synthesis runs inline, the
      latency percentiles are true ingest→synthesis latencies.
    * ``ingest_v1`` / ``ingest_v2`` — transport plane: closes deferred
      (watermark held open), so the sustained window measures only HTTP +
      decode + buffering.  ``binary_speedup_vs_json_v1`` is their
      sustained reports/sec ratio — the binary-frame-vs-JSON transport
      number the full run gates at ≥2x (the end-to-end ratio is also
      reported, as ``e2e_speedup_http``, but is diluted by the shared
      synthesis cost).

    Throughput runs repeat ``repeats`` times (alternating encodings, best
    run kept) after one full-scale warm-up, because the first runs at a
    given scale pay one-time page-faulting costs.  Every mode's synthetic
    output is checked bit-identical against the in-process reference.
    """
    import dataclasses
    import gc

    if quick:
        n_users = min(n_users, 5_000)
        horizon = min(horizon, 6)
    if repeats is None:
        repeats = 1 if quick else 3
    base = LoadSpec(
        n_users=n_users, horizon=horizon, k=k, epsilon=epsilon, w=w,
        seed=seed, pipeline=pipeline, ingest_consumers=ingest_consumers,
    )
    rounds = synthetic_rounds(base)
    # All boundaries (including the subprocess server, which derives λ
    # from the seed dataset it boots from) must agree on λ, or the
    # bit-identical cross-checks are vacuous.
    from repro.geo.trajectory import average_length

    lam = max(1.0, average_length(seed_dataset(base).trajectories))

    def measure(spec: LoadSpec, n_repeats: int) -> LoadResult:
        """Best-of-N sustained rate; streams collected on the last run."""
        best: Optional[LoadResult] = None
        streams = None
        for i in range(n_repeats):
            gc.collect()
            r = run_load(
                spec, rounds, lam, workdir=workdir,
                collect_streams=(i == n_repeats - 1),
            )
            if r.streams is not None:
                streams = r.streams
            if best is None or r.reports_per_sec > best.reports_per_sec:
                best = r
        best.streams = streams
        return best

    if "http" in modes or "inproc" in modes:
        # Full-scale warm-up: fault in the allocator arenas once.
        warm = "http" if "http" in modes else "inproc"
        gc.collect()
        run_load(
            dataclasses.replace(base, mode=warm), rounds, lam,
            collect_streams=False,
        )

    results: dict[str, LoadResult] = {}
    if "inproc" in modes:
        results["inproc"] = measure(
            dataclasses.replace(base, mode="inproc"), repeats
        )
    if "http" in modes:
        # Alternate v1/v2 within each repeat so residual same-process
        # warm-up drift cannot systematically favour one encoding.
        for name, defer in (("http", False), ("ingest", True)):
            streams_by_ver: dict[int, Optional[list]] = {}
            for rep in range(repeats):
                last = rep == repeats - 1
                for ver in (1, 2):
                    spec = dataclasses.replace(
                        base, mode="http", schema_version=ver,
                        defer_closes=defer,
                    )
                    gc.collect()
                    r = run_load(
                        spec, rounds, lam, collect_streams=last
                    )
                    if last:
                        streams_by_ver[ver] = r.streams
                    key = f"{name}_v{ver}"
                    prev = results.get(key)
                    if prev is None or (
                        r.reports_per_sec > prev.reports_per_sec
                    ):
                        results[key] = r
            for ver in (1, 2):
                results[f"{name}_v{ver}"].streams = streams_by_ver[ver]
    if "subprocess" in modes:
        results["subprocess"] = measure(
            dataclasses.replace(base, mode="subprocess"), 1
        )

    reference = next(iter(results.values()))
    bit_identical = all(
        r.streams == reference.streams for r in results.values()
    )

    def ratio(a: str, b: str) -> Optional[float]:
        if a in results and b in results:
            return round(
                results[a].reports_per_sec / results[b].reports_per_sec, 2
            )
        return None

    return {
        "benchmark": "serve-load",
        "quick": bool(quick),
        "workload": {
            "n_users": n_users, "horizon": horizon, "k": k,
            "epsilon": epsilon, "w": w, "seed": seed,
            "pipeline": pipeline, "ingest_consumers": ingest_consumers,
            "repeats": repeats,
            "n_reports": sum(len(r[1]) for r in rounds),
        },
        "results": {name: r.to_dict() for name, r in results.items()},
        "binary_speedup_vs_json_v1": ratio("ingest_v2", "ingest_v1"),
        "e2e_speedup_http": ratio("http_v2", "http_v1"),
        "remote_bit_identical": bool(bit_identical),
    }


def format_bench_serve(payload: dict) -> list[str]:
    """Human-readable rendering of a ``run_bench_serve`` payload."""
    wl = payload["workload"]
    lines = [
        f"serve load harness — {wl['n_users']:,} users × "
        f"{wl['horizon']} timestamps ({wl['n_reports']:,} reports)"
        + (" [quick]" if payload["quick"] else ""),
    ]
    for name, r in payload["results"].items():
        lat = r["latency_ms"]
        lines.append(
            f"  {name:<12} {r['reports_per_sec']:>12,.0f} reports/s   "
            f"p50/p95/p99 {lat['p50']:.1f}/{lat['p95']:.1f}/"
            f"{lat['p99']:.1f} ms   backlog {r['backlog_high_water']:,}   "
            f"rss {r['peak_rss_mb']:.0f} MB"
        )
    if payload["binary_speedup_vs_json_v1"] is not None:
        lines.append(
            f"binary frames vs JSON v1 (transport plane): "
            f"{payload['binary_speedup_vs_json_v1']:.2f}x sustained reports/s"
        )
    if payload.get("e2e_speedup_http") is not None:
        lines.append(
            f"binary frames vs JSON v1 (end-to-end, incl. synthesis): "
            f"{payload['e2e_speedup_http']:.2f}x"
        )
    lines.append(
        "remote replay bit-identical: "
        + ("yes" if payload["remote_bit_identical"] else "NO")
    )
    return lines
