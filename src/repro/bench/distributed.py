"""Collection-plane benchmark for the distributed shard executors.

``repro bench distributed`` measures the question ISSUE 7 asks: what does
promoting collection shards to socket-framed worker services buy over the
in-process pipe pool?  Three executors run the *same* deterministic
workload (the load harness's saturating enter→move→quit population) at
each shard count:

* ``serial``      — shards advanced in-process, the reference;
* ``process``     — the pipe-based :class:`~repro.core.sharded
  .ShardWorkerPool`, with every privacy spend still made by the parent;
* ``distributed`` — the socket-framed :class:`~repro.core.distributed
  .ShardSocketPool` with shard-local privacy accountants.

Only the collection rounds are timed (selection, perturbation, transport,
merge, budget accounting) — synthesis is identical across executors and
would dilute the comparison.  Alongside throughput the benchmark:

* replays full pipelines at a capped scale and checks every executor's
  synthetic output is **bit-identical** at every shard count;
* sweeps the pipelined round depths (ISSUE 9: ``round_batch``) on a
  small-per-round-batch distributed workload — the transport-latency
  regime the fused ``-many`` frames target — with its own ≥2x
  depth-vs-depth-1 gate and bit-identity probe;
* measures the synthesis plane's thread-vs-process slab executors
  (satellite of ISSUE 7) including their own bit-identity check;
* reports the ≥1.5x distributed-vs-process gate: *evaluated* here and
  recorded in the artifact, but only *enforced* by the benchmark suite on
  a multi-core host at full scale — a single-core CI box serializes the
  worker processes, so the ratios are report-only there.

The packaged dict is the ``BENCH_distributed.json`` artifact CI uploads.
"""

from __future__ import annotations

import dataclasses
import gc
import os
import time
from typing import Optional

import numpy as np

from repro.bench.load import LoadSpec, _workload_lam, synthetic_rounds
from repro.core.retrasyn import RetraSynConfig
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.geo.grid import unit_grid

#: The acceptance bar: distributed collection throughput vs the pipe pool.
REQUIRED_SPEEDUP = 1.5
#: The pipelining bar: fused multi-timestamp rounds (``round_batch >= 4``)
#: vs the per-timestamp protocol, distributed executor, small per-round
#: batches (the transport-latency-dominated regime the fusion targets).
REQUIRED_PIPELINE_SPEEDUP = 2.0
#: Executors compared by the collection-plane sweep.
COLLECTION_EXECUTORS = ("serial", "process", "distributed")


def _collection_config(spec: LoadSpec, n_shards: int, executor: str) -> RetraSynConfig:
    return RetraSynConfig(
        epsilon=spec.epsilon,
        w=spec.w,
        seed=spec.seed,
        n_shards=n_shards,
        shard_executor=executor,
        track_privacy=True,  # the accounting plane is part of the story
    )


def _time_collection(spec: LoadSpec, n_shards: int, executor: str) -> float:
    """Wall seconds for the workload's collection rounds, one executor.

    The engine (and its worker pool) is built outside the timed window:
    the comparison is steady-state round throughput, not spawn cost.
    """
    grid = unit_grid(spec.k)
    cfg = _collection_config(spec, n_shards, executor)
    curator = ShardedOnlineRetraSyn(grid, cfg, lam=_workload_lam(spec))
    rounds = synthetic_rounds(spec)
    try:
        start = time.perf_counter()
        for t, batch, entered, quitted, _n_active in rounds:
            curator._collect_round(t, batch, entered, quitted)
        return time.perf_counter() - start
    finally:
        curator.close()


def _full_run_fingerprint(
    spec: LoadSpec, n_shards: int, executor: str, round_batch: int = 1
) -> list:
    """Synthetic output of a full pipeline run (the bit-identity probe)."""
    grid = unit_grid(spec.k)
    cfg = dataclasses.replace(
        _collection_config(spec, n_shards, executor),
        engine="vectorized",
        round_batch=round_batch,
    )
    curator = ShardedOnlineRetraSyn(grid, cfg, lam=_workload_lam(spec))
    rounds = synthetic_rounds(spec)
    try:
        for lo in range(0, len(rounds), round_batch):
            curator.process_timesteps(rounds[lo : lo + round_batch])
        syn = curator.synthetic_dataset(spec.horizon)
        return [(int(tr.start_time), list(tr.cells)) for tr in syn.trajectories]
    finally:
        curator.close()


def _time_pipeline(spec: LoadSpec, n_shards: int, depth: int) -> float:
    """Wall seconds for the full workload at one pipelining depth.

    Distributed executor only — the fused ``-many`` frames and the
    collection/synthesis overlap are both in play, so this measures the
    end-to-end round throughput a depth buys (engine built outside the
    timed window, as in :func:`_time_collection`).
    """
    grid = unit_grid(spec.k)
    cfg = dataclasses.replace(
        _collection_config(spec, n_shards, "distributed"),
        engine="vectorized",
        round_batch=depth,
    )
    curator = ShardedOnlineRetraSyn(grid, cfg, lam=_workload_lam(spec))
    rounds = synthetic_rounds(spec)
    try:
        start = time.perf_counter()
        for lo in range(0, len(rounds), depth):
            curator.process_timesteps(rounds[lo : lo + depth])
        return time.perf_counter() - start
    finally:
        curator.close()


def _time_synthesis(
    n_streams: int, horizon: int, shards: int, executor: str, seed: int
) -> tuple[float, list]:
    """Wall seconds + output fingerprint for the slab-executor sweep."""
    from repro.core.fast_synthesis import VectorizedSynthesizer
    from repro.core.mobility_model import GlobalMobilityModel
    from repro.stream.state_space import TransitionStateSpace

    space = TransitionStateSpace(unit_grid(6))
    model = GlobalMobilityModel(space)
    model.set_all(np.random.default_rng(seed).random(space.size))
    syn = VectorizedSynthesizer(
        model, lam=float(max(1.0, horizon - 1)), rng=seed,
        synthesis_shards=shards, synthesis_executor=executor,
    )
    try:
        syn.spawn_uniform(0, n_streams)
        syn._executor()  # build the pool outside the timed window
        start = time.perf_counter()
        for t in range(1, horizon):
            syn.step(t)
        wall = time.perf_counter() - start
        fingerprint = [
            (int(tr.start_time), list(tr.cells))
            for tr in syn.all_trajectories()
        ]
        return wall, fingerprint
    finally:
        syn.close()


def run_bench_distributed(
    n_users: int = 100_000,
    horizon: int = 8,
    k: int = 6,
    epsilon: float = 1.0,
    w: int = 10,
    seed: int = 0,
    shard_counts: tuple = (1, 4),
    synthesis_shards: int = 4,
    round_batches: tuple = (1, 4, 8),
    quick: bool = False,
    repeats: Optional[int] = None,
) -> dict:
    """Measure the executor sweep; package the BENCH_distributed artifact."""
    if quick:
        n_users = min(n_users, 5_000)
        horizon = min(horizon, 6)
    if repeats is None:
        repeats = 1 if quick else 3
    spec = LoadSpec(
        n_users=n_users, horizon=horizon, k=k,
        epsilon=epsilon, w=w, seed=seed,
    )
    n_reports = n_users * horizon

    def best_wall(fn, *args) -> float:
        best = None
        for _ in range(repeats):
            gc.collect()
            wall = fn(*args)
            if best is None or wall < best:
                best = wall
        return best

    # Warm-up at full scale: fault in allocator arenas once.
    _time_collection(spec, shard_counts[0], "serial")

    collection: dict[str, dict] = {}
    for n_shards in shard_counts:
        row: dict = {}
        for executor in COLLECTION_EXECUTORS:
            wall = best_wall(_time_collection, spec, n_shards, executor)
            row[executor] = {
                "wall_seconds": round(wall, 4),
                "reports_per_sec": round(n_reports / wall, 1),
            }
        row["speedup_distributed_vs_process"] = round(
            row["process"]["wall_seconds"]
            / row["distributed"]["wall_seconds"],
            2,
        )
        row["speedup_distributed_vs_serial"] = round(
            row["serial"]["wall_seconds"]
            / row["distributed"]["wall_seconds"],
            2,
        )
        collection[f"K{n_shards}"] = row

    # Bit-identity across executors and shard counts, at a capped scale
    # (full pipelines, synthesis included — the user-visible output).
    probe = dataclasses.replace(
        spec,
        n_users=min(n_users, 2_000),
        horizon=min(horizon, 6),
    )
    bit_identical = True
    for n_shards in shard_counts:
        reference = _full_run_fingerprint(probe, n_shards, "serial")
        for executor in ("process", "distributed"):
            if _full_run_fingerprint(probe, n_shards, executor) != reference:
                bit_identical = False

    # Satellite: synthesis slab executors, thread vs process.  Even in
    # quick mode keep enough streams that the slab threshold
    # (_MIN_STREAMS_PER_SHARD per shard) actually engages the pool.
    syn_streams = 10_000 if quick else n_users
    syn_results: dict[str, dict] = {}
    syn_fps: dict[str, list] = {}
    for executor in ("thread", "process"):
        wall, fp = _time_synthesis(
            syn_streams, horizon, synthesis_shards, executor, seed
        )
        wall = min(
            wall,
            best_wall(
                lambda *a: _time_synthesis(*a)[0],
                syn_streams, horizon, synthesis_shards, executor, seed,
            )
            if repeats > 1
            else wall,
        )
        syn_results[executor] = {
            "wall_seconds": round(wall, 4),
            "stream_steps_per_sec": round(
                syn_streams * (horizon - 1) / wall, 1
            ),
        }
        syn_fps[executor] = fp

    speedup = collection[f"K{max(shard_counts)}"][
        "speedup_distributed_vs_process"
    ]
    multi_core = (os.cpu_count() or 1) > 1
    gate_enforced = multi_core and not quick and n_users >= 100_000

    # Tentpole: fused multi-timestamp rounds.  Small per-round batches
    # over a long horizon put the workload in the regime the fusion
    # targets (per-round transport latency dominates per-row work), at
    # K=4 distributed; every depth is also checked bit-identical to the
    # per-timestamp protocol on the full pipeline.
    round_batches = tuple(sorted(set(int(d) for d in round_batches)))
    if 1 not in round_batches:
        round_batches = (1,) + round_batches
    pipe_shards = 4 if 4 in shard_counts else max(shard_counts)
    pipe_spec = LoadSpec(
        n_users=200 if quick else 1_000,
        horizon=24 if quick else 64,
        k=k, epsilon=epsilon, w=w, seed=seed,
    )
    pipeline: dict[str, dict] = {}
    for depth in round_batches:
        wall = best_wall(_time_pipeline, pipe_spec, pipe_shards, depth)
        pipeline[f"depth{depth}"] = {
            "wall_seconds": round(wall, 4),
            "rounds_per_sec": round(pipe_spec.horizon / wall, 1),
        }
    depth1_wall = pipeline["depth1"]["wall_seconds"]
    for depth in round_batches:
        pipeline[f"depth{depth}"]["speedup_vs_depth1"] = round(
            depth1_wall / pipeline[f"depth{depth}"]["wall_seconds"], 2
        )
    pipe_probe = dataclasses.replace(
        pipe_spec, n_users=min(pipe_spec.n_users, 500), horizon=12
    )
    pipe_reference = _full_run_fingerprint(
        pipe_probe, pipe_shards, "distributed", round_batch=1
    )
    pipe_bit_identical = all(
        _full_run_fingerprint(
            pipe_probe, pipe_shards, "distributed", round_batch=depth
        )
        == pipe_reference
        for depth in round_batches
        if depth > 1
    )
    deep = [d for d in round_batches if d >= 4]
    pipe_speedup = (
        max(pipeline[f"depth{d}"]["speedup_vs_depth1"] for d in deep)
        if deep
        else 0.0
    )
    # Same enforcement policy as the executor gate: the fused frames only
    # beat the per-timestamp protocol when the workers genuinely overlap,
    # so a single-core (or reduced-scale) run records the ratio only.
    pipe_gate_enforced = multi_core and not quick
    return {
        "benchmark": "distributed-shard-plane",
        "quick": bool(quick),
        "cpu_count": os.cpu_count(),
        "workload": {
            "n_users": n_users, "horizon": horizon, "k": k,
            "epsilon": epsilon, "w": w, "seed": seed,
            "repeats": repeats, "n_reports": n_reports,
            "shard_counts": list(shard_counts),
        },
        "collection": collection,
        "bit_identical": bool(bit_identical),
        "pipeline": {
            "n_users": pipe_spec.n_users,
            "horizon": pipe_spec.horizon,
            "shards": pipe_shards,
            "round_batches": list(round_batches),
            "results": pipeline,
            "bit_identical": bool(pipe_bit_identical),
            "gate": {
                "required_speedup_vs_depth1": REQUIRED_PIPELINE_SPEEDUP,
                "measured": pipe_speedup,
                "enforced": bool(pipe_gate_enforced),
                "passed": bool(pipe_speedup >= REQUIRED_PIPELINE_SPEEDUP),
            },
        },
        "synthesis": {
            "n_streams": syn_streams,
            "shards": synthesis_shards,
            "results": syn_results,
            "speedup_process_vs_thread": round(
                syn_results["thread"]["wall_seconds"]
                / syn_results["process"]["wall_seconds"],
                2,
            ),
            "bit_identical": syn_fps["thread"] == syn_fps["process"],
        },
        "gate": {
            "required_speedup_distributed_vs_process": REQUIRED_SPEEDUP,
            "measured": speedup,
            "enforced": bool(gate_enforced),
            "passed": bool(speedup >= REQUIRED_SPEEDUP),
        },
    }


def format_bench_distributed(payload: dict) -> list[str]:
    """Human-readable rendering of a ``run_bench_distributed`` payload."""
    wl = payload["workload"]
    lines = [
        f"distributed shard plane — {wl['n_users']:,} users × "
        f"{wl['horizon']} timestamps ({wl['n_reports']:,} reports)"
        + (" [quick]" if payload["quick"] else ""),
    ]
    for key, row in payload["collection"].items():
        lines.append(f"  {key} collection rounds:")
        for executor in COLLECTION_EXECUTORS:
            r = row[executor]
            lines.append(
                f"    {executor:<12} {r['reports_per_sec']:>12,.0f} "
                f"reports/s  ({r['wall_seconds']:.3f}s)"
            )
        lines.append(
            f"    distributed vs process "
            f"{row['speedup_distributed_vs_process']:.2f}x, "
            f"vs serial {row['speedup_distributed_vs_serial']:.2f}x"
        )
    pipe = payload["pipeline"]
    lines.append(
        f"  K{pipe['shards']} pipelined rounds ({pipe['n_users']:,} users × "
        f"{pipe['horizon']} timestamps, distributed):"
    )
    for depth in pipe["round_batches"]:
        r = pipe["results"][f"depth{depth}"]
        lines.append(
            f"    depth {depth:<3} {r['rounds_per_sec']:>8,.1f} rounds/s  "
            f"({r['wall_seconds']:.3f}s, {r['speedup_vs_depth1']:.2f}x "
            f"vs depth 1)"
        )
    pgate = pipe["gate"]
    lines.append(
        f"    gate ≥{pgate['required_speedup_vs_depth1']:.1f}x at depth≥4: "
        f"measured {pgate['measured']:.2f}x — "
        + (
            ("PASS" if pgate["passed"] else "FAIL")
            if pgate["enforced"]
            else "report-only (single-core host or reduced scale)"
        )
        + "; depths bit-identical: "
        + ("yes" if pipe["bit_identical"] else "NO")
    )
    syn = payload["synthesis"]
    lines.append(
        f"  synthesis slabs ({syn['n_streams']:,} streams × "
        f"{syn['shards']} shards): process vs thread "
        f"{syn['speedup_process_vs_thread']:.2f}x"
        f" (bit-identical: {'yes' if syn['bit_identical'] else 'NO'})"
    )
    gate = payload["gate"]
    lines.append(
        f"  gate ≥{gate['required_speedup_distributed_vs_process']:.1f}x: "
        f"measured {gate['measured']:.2f}x — "
        + (
            ("PASS" if gate["passed"] else "FAIL")
            if gate["enforced"]
            else "report-only (single-core host or reduced scale)"
        )
    )
    lines.append(
        "  executor outputs bit-identical: "
        + ("yes" if payload["bit_identical"] else "NO")
    )
    return lines
