"""Downstream analysis toolkit over (synthetic) trajectory databases.

The whole point of synthesis-based release (paper Section I, Challenge I)
is that the curator can answer *arbitrary* location-based analyses on the
synthetic database without further privacy cost.  This package provides the
query surface those applications use:

* :class:`~repro.analysis.queries.TrajectoryAnalyzer` — range counts,
  top-k hotspots, OD flow matrices, visit shares, per-timestamp densities;
* :class:`~repro.analysis.flows.FlowAnalyzer` — cell-to-cell and
  region-to-region flow analysis over time windows;
* :mod:`~repro.analysis.comparison` — side-by-side fidelity reports between
  a real and a synthetic database.
"""

from repro.analysis.queries import TrajectoryAnalyzer
from repro.analysis.flows import FlowAnalyzer
from repro.analysis.comparison import fidelity_report, format_fidelity_report

__all__ = [
    "TrajectoryAnalyzer",
    "FlowAnalyzer",
    "fidelity_report",
    "format_fidelity_report",
]
