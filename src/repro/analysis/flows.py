"""Flow analysis: movement volumes between cells and regions over time.

Answers questions like "how much traffic moved from the residential west
side into the business district between 8am and 9am?" — the fine-grained
mobility semantics the paper's global mobility model is built to preserve.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.geo.point import BoundingBox
from repro.stream.stream import StreamDataset


class FlowAnalyzer:
    """Transition-volume queries over one :class:`StreamDataset`."""

    def __init__(self, dataset: StreamDataset) -> None:
        self.dataset = dataset
        self.grid = dataset.grid

    def transition_counts(
        self, t_from: int = 0, t_to: Optional[int] = None
    ) -> Counter:
        """Counts of movement pairs ``(from_cell, to_cell)`` in a window."""
        t_to = self.dataset.n_timestamps - 1 if t_to is None else t_to
        counts: Counter = Counter()
        for t in range(max(1, t_from), t_to + 1):
            counts.update(self.dataset.transitions_at(t))
        return counts

    def flow_between(
        self,
        source: BoundingBox,
        sink: BoundingBox,
        t_from: int = 0,
        t_to: Optional[int] = None,
    ) -> int:
        """Single-step movements from ``source`` into ``sink`` in a window."""
        src = set(self.grid.cells_in_region(source))
        dst = set(self.grid.cells_in_region(sink))
        counts = self.transition_counts(t_from, t_to)
        return sum(c for (a, b), c in counts.items() if a in src and b in dst)

    def net_flow(self, region: BoundingBox, t: int) -> int:
        """Inflow minus outflow of ``region`` at timestamp ``t``."""
        cells = set(self.grid.cells_in_region(region))
        inflow = outflow = 0
        for a, b in self.dataset.transitions_at(t):
            if a not in cells and b in cells:
                inflow += 1
            elif a in cells and b not in cells:
                outflow += 1
        return inflow - outflow

    def dominant_direction(self, t_from: int = 0, t_to: Optional[int] = None) -> str:
        """Crude compass summary of the net movement in a window."""
        counts = self.transition_counts(t_from, t_to)
        dx = dy = 0.0
        for (a, b), c in counts.items():
            ra, ca = self.grid.cell_to_rowcol(a)
            rb, cb = self.grid.cell_to_rowcol(b)
            dx += (cb - ca) * c
            dy += (rb - ra) * c
        if dx == 0 and dy == 0:
            return "stationary"
        ew = "east" if dx > 0 else "west"
        ns = "north" if dy > 0 else "south"
        if abs(dx) > 2 * abs(dy):
            return ew
        if abs(dy) > 2 * abs(dx):
            return ns
        return f"{ns}-{ew}"

    def stay_ratio(self, t_from: int = 0, t_to: Optional[int] = None) -> float:
        """Fraction of movements that are self-loops (no cell change)."""
        counts = self.transition_counts(t_from, t_to)
        total = sum(counts.values())
        if total == 0:
            return 0.0
        stays = sum(c for (a, b), c in counts.items() if a == b)
        return stays / total

    def flow_matrix(
        self, t_from: int = 0, t_to: Optional[int] = None
    ) -> np.ndarray:
        """Dense ``|C| x |C|`` matrix of movement counts in a window."""
        n = self.grid.n_cells
        mat = np.zeros((n, n), dtype=np.int64)
        for (a, b), c in self.transition_counts(t_from, t_to).items():
            mat[a, b] = c
        return mat
