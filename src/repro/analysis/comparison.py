"""Side-by-side fidelity reports between a real and a synthetic database.

Bundles the paper's eight metrics with descriptive statistics into a single
audit structure an operator can eyeball before publishing a release.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics.registry import ALL_METRICS, HIGHER_IS_BETTER, evaluate_all
from repro.rng import RngLike
from repro.stream.stream import StreamDataset


def fidelity_report(
    real: StreamDataset,
    syn: StreamDataset,
    phi: int = 10,
    metrics: Optional[Sequence[str]] = None,
    rng: RngLike = 0,
) -> dict:
    """Structured comparison: scale statistics plus utility metrics."""
    real_stats = real.stats()
    syn_stats = syn.stats()
    return {
        "real": real_stats,
        "synthetic": syn_stats,
        "size_ratio": (
            syn_stats["size"] / real_stats["size"] if real_stats["size"] else 0.0
        ),
        "points_ratio": (
            syn_stats["n_points"] / real_stats["n_points"]
            if real_stats["n_points"]
            else 0.0
        ),
        "metrics": evaluate_all(real, syn, phi=phi, metrics=metrics, rng=rng),
    }


def format_fidelity_report(report: dict) -> str:
    """Human-readable rendering of :func:`fidelity_report`."""
    lines = [
        "Fidelity report",
        "===============",
        f"real:      {report['real']['size']:>8d} streams, "
        f"{report['real']['n_points']:>10d} points, "
        f"avg length {report['real']['average_length']:.2f}",
        f"synthetic: {report['synthetic']['size']:>8d} streams, "
        f"{report['synthetic']['n_points']:>10d} points, "
        f"avg length {report['synthetic']['average_length']:.2f}",
        f"stream-count ratio {report['size_ratio']:.3f}, "
        f"point-count ratio {report['points_ratio']:.3f}",
        "",
        "metric scores:",
    ]
    for name in ALL_METRICS:
        if name not in report["metrics"]:
            continue
        direction = "max" if name in HIGHER_IS_BETTER else "min"
        lines.append(
            f"  {name:18s} {report['metrics'][name]:8.4f}  (better: {direction})"
        )
    return "\n".join(lines)
