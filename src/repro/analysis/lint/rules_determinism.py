"""Determinism rules: RNG discipline, wall-clock reads, set iteration.

The reproduction's core guarantee — serial ≡ process ≡ distributed
executors produce *bit-identical* streams — holds only because every
random draw flows through an injected, seeded
:class:`numpy.random.Generator` in a pinned order.  These rules make the
three classic ways of breaking that guarantee un-writable in the
deterministic planes (``core/``, ``ldp/``, ``stream/``):

* drawing from global RNG state (``random.*``, ``np.random.*``) or
  creating an *unseeded* ``default_rng()``;
* reading the wall clock where results could feed outputs;
* iterating a ``set`` (hash order — varies run to run under
  ``PYTHONHASHSEED``) where order can reach RNG- or wire-ordered output.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.lint.engine import Finding, Module, Rule

#: The planes whose behaviour must be bit-reproducible.
DETERMINISTIC_PLANES = frozenset({"core", "ldp", "stream"})

#: np.random constructors that take explicit state and are therefore fine.
_SEEDABLE_TYPES = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
     "Philox", "SFC64", "MT19937"}
)

#: Wall-clock reads (``time`` module functions).
_CLOCK_FUNCS = frozenset(
    {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
     "monotonic_ns", "process_time", "process_time_ns"}
)

#: ``datetime`` constructors that capture "now".
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})


def _in_deterministic_plane(module: Module) -> bool:
    return module.plane in DETERMINISTIC_PLANES


class RngGlobalStateRule(Rule):
    """All randomness must flow through an injected, seeded Generator."""

    name = "rng-global-state"
    severity = "error"
    description = (
        "no random.* / np.random.* global-state draws or unseeded "
        "default_rng() in the deterministic planes (core/, ldp/, stream/)"
    )

    def visit_module(self, module: Module) -> Iterable[Finding]:
        if not _in_deterministic_plane(module):
            return
        random_aliases = module.aliases_of("random")
        numpy_aliases = module.aliases_of("numpy") | module.aliases_of("np")
        np_random_aliases = module.aliases_of("numpy.random")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                origin = module.from_imports.get(func.id)
                if origin is None:
                    continue
                if origin.startswith("random."):
                    yield module.finding(
                        self, node,
                        f"stdlib '{origin}' draws from global RNG state; "
                        "take an injected numpy Generator instead",
                    )
                elif origin == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    yield module.finding(
                        self, node,
                        "unseeded default_rng() is fresh OS entropy; thread "
                        "a seeded Generator through repro.rng.ensure_rng",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            # random.<draw>()
            if isinstance(value, ast.Name) and value.id in random_aliases:
                yield module.finding(
                    self, node,
                    f"stdlib 'random.{func.attr}' draws from global RNG "
                    "state; take an injected numpy Generator instead",
                )
                continue
            # np.random.<fn>()  /  <numpy.random alias>.<fn>()
            is_np_random = (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_aliases
            ) or (isinstance(value, ast.Name) and value.id in np_random_aliases)
            if not is_np_random:
                continue
            if func.attr in _SEEDABLE_TYPES:
                continue
            if func.attr == "default_rng":
                if not (node.args or node.keywords):
                    yield module.finding(
                        self, node,
                        "unseeded np.random.default_rng() is fresh OS "
                        "entropy; thread a seeded Generator through "
                        "repro.rng.ensure_rng",
                    )
                continue
            yield module.finding(
                self, node,
                f"'np.random.{func.attr}' uses numpy's global RNG state; "
                "draw from an injected Generator instead",
            )


class WallClockRule(Rule):
    """No wall-clock reads in the deterministic planes.

    Phase timings and checkpoint stamps are legitimate *observability*
    uses — they must never feed RNG-ordered or wire-ordered output — and
    live in the committed baseline with a justification each, so any new
    clock read starts a deliberate conversation instead of slipping in.
    """

    name = "wall-clock"
    severity = "warning"
    description = (
        "no time.time()/perf_counter()/datetime.now() in the "
        "deterministic planes outside the obs/bench allowlist"
    )

    def visit_module(self, module: Module) -> Iterable[Finding]:
        if not _in_deterministic_plane(module):
            return
        time_aliases = module.aliases_of("time")
        datetime_mod_aliases = module.aliases_of("datetime")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                origin = module.from_imports.get(func.id, "")
                if origin.startswith("time.") and origin.split(".", 1)[1] in _CLOCK_FUNCS:
                    yield module.finding(
                        self, node,
                        f"wall-clock read '{origin}' in a deterministic plane",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in time_aliases
                and func.attr in _CLOCK_FUNCS
            ):
                yield module.finding(
                    self, node,
                    f"wall-clock read 'time.{func.attr}' in a deterministic "
                    "plane",
                )
            elif func.attr in _DATETIME_NOW and (
                (isinstance(value, ast.Name)
                 and (value.id in datetime_mod_aliases
                      or module.from_imports.get(value.id, "")
                      == "datetime.datetime"))
                or (isinstance(value, ast.Attribute)
                    and value.attr == "datetime"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in datetime_mod_aliases)
            ):
                yield module.finding(
                    self, node,
                    f"wall-clock read 'datetime.{func.attr}' in a "
                    "deterministic plane",
                )


class SetIterationRule(Rule):
    """Iterating a set is hash-ordered — nondeterministic across runs."""

    name = "set-iteration"
    severity = "error"
    description = (
        "no iteration over set expressions in the deterministic planes "
        "(hash order varies under PYTHONHASHSEED); sort first"
    )

    def visit_module(self, module: Module) -> Iterable[Finding]:
        if not _in_deterministic_plane(module):
            return
        # Function-local names assigned directly from a set expression.
        set_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and self._is_set_expr(
                node.value, set_names
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if self._is_set_expr(node.value, set_names) and isinstance(
                    node.target, ast.Name
                ):
                    set_names.add(node.target.id)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                if self._is_set_expr(node.iter, set_names):
                    yield self._finding(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter, set_names):
                        yield self._finding(module, gen.iter)
            elif isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else None
                if name in {"list", "tuple", "enumerate", "iter"} and node.args:
                    if self._is_set_expr(node.args[0], set_names):
                        yield self._finding(module, node)

    def _finding(self, module: Module, node: ast.AST) -> Finding:
        return module.finding(
            self, node,
            "iterating a set is hash-ordered and varies across runs; "
            "wrap in sorted(...) before the order can reach RNG- or "
            "wire-ordered output",
        )

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        """Conservatively: literals, set()/frozenset() calls, tracked
        names, set operators over those — never `sorted(...)`."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in {
                "union", "intersection", "difference", "symmetric_difference",
            }:
                return self._is_set_expr(func.value, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False
