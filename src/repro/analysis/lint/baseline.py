"""The committed grandfather file of ``repro lint``.

A baseline entry absorbs up to ``count`` findings of one rule in one file
whose *source line text* matches ``code`` — content-addressed, so entries
survive unrelated line-number drift but expire the moment the offending
line itself changes.  Every entry carries a one-line ``justification``;
an entry that no longer matches anything is reported as *stale* so the
file and the tree cannot quietly diverge.

Format (``lint-baseline.json``)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "wall-clock",
          "path": "core/online.py",
          "code": "tic = time.perf_counter()",
          "count": 4,
          "justification": "phase timings are observability-only; ..."
        }
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.lint.engine import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass
class BaselineEntry:
    """Grandfathers up to ``count`` findings of ``rule`` in ``path``."""

    rule: str
    path: str  #: package-relative posix path (``Finding.pkg_path``)
    code: str  #: stripped source line the finding sits on
    count: int = 1
    justification: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.code)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "code": self.code,
            "count": self.count,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The entry set plus load/save/match logic."""

    entries: List[BaselineEntry] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: expected a version-{BASELINE_VERSION} baseline object"
            )
        entries = []
        for i, entry in enumerate(raw.get("entries", [])):
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(entry["rule"]),
                        path=str(entry["path"]),
                        code=str(entry["code"]),
                        count=int(entry.get("count", 1)),
                        justification=str(entry.get("justification", "")),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"{path}: malformed entry #{i}: {exc}") from exc
            if entries[-1].count < 1:
                raise BaselineError(f"{path}: entry #{i} has count < 1")
        return cls(entries)

    def save(self, path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.code)
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def filter(
        self, findings: Sequence["Finding"]
    ) -> Tuple[List["Finding"], int, List[str]]:
        """Split ``findings`` into (reported, absorbed count, stale keys).

        Identical lines in one file are absorbed in source order up to the
        entry's ``count``; surplus findings are reported.  Entries with
        unused capacity — the grandfathered line was fixed or moved — come
        back as human-readable *stale* descriptions.
        """
        capacity: Dict[Tuple[str, str, str], int] = {}
        justified: Dict[Tuple[str, str, str], BaselineEntry] = {}
        for entry in self.entries:
            capacity[entry.key()] = capacity.get(entry.key(), 0) + entry.count
            justified[entry.key()] = entry
        reported: List["Finding"] = []
        absorbed = 0
        used: Counter = Counter()
        for finding in sorted(findings, key=lambda f: (f.pkg_path, f.line)):
            key = (finding.rule, finding.pkg_path, finding.code)
            if capacity.get(key, 0) > 0:
                capacity[key] -= 1
                used[key] += 1
                absorbed += 1
            else:
                reported.append(finding)
        stale = [
            f"{key[1]}: {key[0]}: {remaining} unmatched of "
            f"{justified[key].count} ({justified[key].code!r})"
            for key, remaining in sorted(capacity.items())
            if remaining > 0
        ]
        return reported, absorbed, stale

    @classmethod
    def from_findings(
        cls, findings: Sequence["Finding"], justification: str = ""
    ) -> "Baseline":
        """A baseline absorbing exactly ``findings`` (``--write-baseline``)."""
        counts: Counter = Counter(
            (f.rule, f.pkg_path, f.code) for f in findings
        )
        return cls(
            [
                BaselineEntry(
                    rule=rule,
                    path=path,
                    code=code,
                    count=n,
                    justification=justification,
                )
                for (rule, path, code), n in sorted(counts.items())
            ]
        )
