"""Concurrency rules: checkpoint pickle safety and lock-scope hygiene.

Checkpoints pickle curator ``__dict__`` wholesale (PR 2), so any class in
the checkpointed planes that stores process-local machinery — locks,
threads, sockets, pools — must exclude it via ``__getstate__`` /
``__reduce__`` (the PR 4 "pool excluded from pickles" pattern).  And the
PR 8 hung-coordinator class of bug came from blocking socket reads while
holding a lock; the sanctioned shapes are ``with lock:`` blocks that
never contain a blocking receive.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.lint.engine import Finding, Module, Rule
from repro.analysis.lint.rules_determinism import DETERMINISTIC_PLANES

#: Constructors whose instances must never reach a pickle.
_UNPICKLABLE = frozenset(
    {
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
        "threading.Barrier", "threading.Thread", "threading.local",
        "socket.socket", "socket.socketpair", "socket.create_connection",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool", "multiprocessing.pool.Pool",
        "multiprocessing.Process", "multiprocessing.Queue",
        "multiprocessing.Pipe", "multiprocessing.Manager",
        "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
        "queue.PriorityQueue",
    }
)

#: Dunder methods that take pickling into the class's own hands.
_PICKLE_HOOKS = frozenset({"__getstate__", "__reduce__", "__reduce_ex__"})

#: Blocking receive shapes (stdlib socket plus this repo's frame helpers).
_BLOCKING_RECV = frozenset(
    {"recv", "recv_into", "recvfrom", "recvmsg", "accept",
     "recv_frame", "recv_frame_sized", "_recv_exact", "_recv"}
)


class PickleSafetyRule(Rule):
    """Checkpointed classes must not pickle locks/threads/sockets/pools."""

    name = "pickle-unsafe-state"
    severity = "error"
    description = (
        "classes in the checkpointed planes (core/, ldp/, stream/) that "
        "store locks/threads/sockets/pools on self must define "
        "__getstate__ or __reduce__ excluding them"
    )

    def visit_module(self, module: Module) -> Iterable[Finding]:
        if module.plane not in DETERMINISTIC_PLANES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        has_hook = any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name in _PICKLE_HOOKS
            for item in cls.body
        )
        if has_hook:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(item):
                value: Optional[ast.AST] = None
                targets: List[ast.AST] = []
                if isinstance(stmt, ast.Assign):
                    value, targets = stmt.value, stmt.targets
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    value, targets = stmt.value, [stmt.target]
                if value is None:
                    continue
                self_attrs = [
                    t for t in targets
                    if isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ]
                if not self_attrs:
                    continue
                bad = self._unpicklable_call(module, value)
                if bad is not None:
                    attr = self_attrs[0].attr
                    yield module.finding(
                        self, stmt,
                        f"{cls.name}.{attr} holds a {bad} but {cls.name} "
                        "defines no __getstate__/__reduce__; checkpoints "
                        "pickle instance state wholesale (exclude it like "
                        "the synthesis pool does)",
                    )

    def _unpicklable_call(self, module: Module, expr: ast.AST) -> Optional[str]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                origin = module.resolve_call(node.func)
                if origin in _UNPICKLABLE:
                    return origin
        return None


class LockScopeRule(Rule):
    """Locks via ``with`` only; never block on a socket inside one."""

    name = "lock-scope"
    severity = "error"
    description = (
        "no bare .acquire() (locks are held via 'with'), and no blocking "
        "socket receive inside a lock-holding 'with' block"
    )

    def visit_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "acquire"
                    and not self._is_with_context(module, node)
                ):
                    yield module.finding(
                        self, node,
                        "bare .acquire() risks a leaked lock on any "
                        "exception path; hold locks via 'with'",
                    )
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                if not self._holds_lock(node):
                    continue
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in _BLOCKING_RECV
                    ):
                        yield module.finding(
                            self, inner,
                            f"blocking receive '{inner.func.attr}()' while "
                            "holding a lock can hang every other holder "
                            "(the PR 8 hung-coordinator bug class); "
                            "receive outside the lock, then publish",
                        )

    def _holds_lock(self, node) -> bool:
        for item in node.items:
            text = ast.unparse(item.context_expr).lower()
            # `with lock:` / `with self._state_lock:`; condition variables
            # are lock-like too.  `with pool.lock_free_view()` would false-
            # positive — suppress inline if that shape ever appears.
            if "lock" in text or "mutex" in text or "cond" in text:
                return True
        return False

    def _is_with_context(self, module: Module, call: ast.Call) -> bool:
        """True when the .acquire() call is itself a `with` context item
        (``with lock.acquire():`` is unusual but not a leak)."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.context_expr is call:
                        return True
        return False
