"""The ``repro lint`` subcommand (exit 0 clean / 1 findings).

Usage::

    repro lint src/repro                         # default baseline lookup
    repro lint src/repro --baseline lint-baseline.json
    repro lint src/repro --rules rng-global-state,lock-scope
    repro lint src/repro --write-baseline        # grandfather the present
    repro lint --list-rules

The baseline defaults to ``lint-baseline.json`` next to the repo's
``pyproject.toml`` (falling back to the current directory); pass
``--no-baseline`` to see every finding including grandfathered ones.
Findings can additionally be written as a JSON artifact (``--out``) for
CI upload.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.baseline import Baseline, BaselineError
from repro.analysis.lint.engine import find_project_root, run_lint
from repro.analysis.lint.rules import all_rules


def add_lint_parser(sub) -> None:
    p = sub.add_parser(
        "lint",
        help="invariant-checking static analysis (determinism, "
             "concurrency, wire-schema discipline); exit 0 clean / "
             "1 findings",
    )
    p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline JSON of grandfathered findings (default: "
             "lint-baseline.json beside pyproject.toml, if present)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline path and exit 0 "
             "(fill in per-entry justifications before committing)",
    )
    p.add_argument(
        "--rules", default=None, metavar="NAMES",
        help="comma-separated subset of rules to run",
    )
    p.add_argument(
        "--format", default="text", choices=("text", "json"),
        dest="output_format", help="report format on stdout",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write findings as a JSON artifact (for CI upload)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _default_baseline(paths: Sequence[str]) -> Optional[Path]:
    root = find_project_root(Path(paths[0]).resolve()) if paths else None
    for candidate in filter(None, (root, Path("."))):
        path = Path(candidate) / "lint-baseline.json"
        if path.is_file():
            return path
    return None


def run_lint_cli(args) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:22s} [{rule.severity}] {rule.description}")
        return 0

    only = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules else None
    )
    try:
        rules = all_rules(only)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_path: Optional[Path]
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = _default_baseline(args.paths)

    baseline = None
    if baseline_path is not None and not args.write_baseline:
        if not baseline_path.is_file():
            print(
                f"repro lint: baseline not found: {baseline_path}",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except (BaselineError, json.JSONDecodeError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2

    result = run_lint(args.paths, rules=rules, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or Path("lint-baseline.json")
        Baseline.from_findings(
            result.findings, justification="TODO: justify or fix"
        ).save(target)
        print(
            f"wrote {target} ({len(result.findings)} finding(s) "
            "grandfathered; fill in justifications)"
        )
        return 0

    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline": result.stale_baseline,
        "n_files": result.n_files,
    }
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    if args.output_format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for finding in result.findings:
            print(finding.format())
        for stale in result.stale_baseline:
            print(f"stale baseline entry: {stale}")
        print(result.summary())
    return 0 if result.ok else 1
