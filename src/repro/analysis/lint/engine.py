"""Rule engine of ``repro lint``.

The engine parses every Python file under the requested paths once,
classifies it by *plane* (the top-level package directory: ``core``,
``ldp``, ``stream``, ``api``, …), and hands the parsed
:class:`Module` objects to each registered :class:`Rule`.  Rules emit
:class:`Finding` objects; the engine then filters inline suppressions
(``# repro-lint: disable=RULE``) and baseline-matched findings before
reporting.

Everything here is purely syntactic — the analyzed code is **never
imported** — so the analyzer can run on a broken tree, on fixtures, and
in CI without side effects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.baseline import Baseline

#: Severity vocabulary, most severe first.
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: display path (as the file was reached on disk)
    pkg_path: str  #: package-relative posix path — stable across checkouts
    line: int
    col: int
    message: str
    severity: str = "error"
    code: str = ""  #: stripped source line, the baseline fingerprint

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "pkg_path": self.pkg_path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "code": self.code,
        }


class Module:
    """One parsed source file plus the lookups every rule needs."""

    def __init__(self, path: Path, pkg_path: str, source: str):
        self.path = path
        self.pkg_path = pkg_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: local alias -> imported module dotted path (``import numpy as np``)
        self.module_aliases: Dict[str, str] = {}
        #: local name -> dotted origin (``from threading import Lock``)
        self.from_imports: Dict[str, str] = {}
        self._collect_imports()
        self._suppressions, self._file_suppressions = self._collect_suppressions()

    # ------------------------------------------------------------------ #
    # imports
    # ------------------------------------------------------------------ #
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def aliases_of(self, dotted: str) -> Set[str]:
        """Local names bound to the module ``dotted`` (``numpy`` -> {np})."""
        return {
            local
            for local, target in self.module_aliases.items()
            if target == dotted
        }

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Dotted origin of a call target, or ``None`` when unresolvable.

        ``threading.Lock()`` resolves through the import table to
        ``"threading.Lock"``; ``Lock()`` after ``from threading import
        Lock`` resolves identically, so rules match on one vocabulary.
        """
        if isinstance(func, ast.Name):
            return self.from_imports.get(func.id, func.id)
        if isinstance(func, ast.Attribute):
            parts: List[str] = []
            node: ast.AST = func
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            head = self.module_aliases.get(node.id, self.from_imports.get(node.id))
            parts.append(head if head is not None else node.id)
            return ".".join(reversed(parts))
        return None

    # ------------------------------------------------------------------ #
    # suppressions
    # ------------------------------------------------------------------ #
    def _collect_suppressions(self) -> Tuple[Dict[int, Set[str]], Set[str]]:
        per_line: Dict[int, Set[str]] = {}
        whole_file: Set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
            if m.group("scope"):
                whole_file |= rules
            else:
                per_line.setdefault(lineno, set()).update(rules)
        return per_line, whole_file

    def is_suppressed(self, rule: str, line: int) -> bool:
        """A finding is suppressed by a marker on its line, the line above
        (comment-above style), or a file-level ``disable-file`` marker."""
        if rule in self._file_suppressions or "all" in self._file_suppressions:
            return True
        for lineno in (line, line - 1):
            rules = self._suppressions.get(lineno)
            if rules and (rule in rules or "all" in rules):
                return True
        return False

    # ------------------------------------------------------------------ #
    # conveniences for rules
    # ------------------------------------------------------------------ #
    @property
    def plane(self) -> str:
        """Top-level package directory ('' for package-root modules)."""
        parts = self.pkg_path.split("/")
        return parts[0] if len(parts) > 1 else ""

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule.name,
            path=str(self.path),
            pkg_path=self.pkg_path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=rule.severity,
            code=self.line_text(line),
        )


class Project:
    """All modules of one lint run plus repo-level context."""

    def __init__(self, modules: Sequence[Module], root: Optional[Path]):
        self.modules = list(modules)
        #: Repository root (directory holding ``pyproject.toml``), when found.
        self.root = root

    def module_at(self, pkg_path: str) -> Optional[Module]:
        for module in self.modules:
            if module.pkg_path == pkg_path:
                return module
        return None

    def read_doc(self, rel_path: str) -> Optional[str]:
        """Text of a repo doc (e.g. ``docs/API.md``) or ``None``."""
        if self.root is None:
            return None
        path = self.root / rel_path
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class Rule:
    """Base class of one invariant check.

    ``visit_module`` runs per file; ``finalize`` runs once after every
    module has been visited and is where cross-file registry rules live.
    """

    #: Stable identifier used in suppressions and the baseline.
    name: str = ""
    #: "error" or "warning" (both fail the run; severity is for triage).
    severity: str = "error"
    #: One-line rationale shown by ``repro lint --list-rules``.
    description: str = ""

    def visit_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[str] = field(default_factory=list)
    n_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        parts = [
            f"{len(self.findings)} finding(s) in {self.n_files} file(s)",
            f"{self.baselined} baselined",
            f"{self.suppressed} suppressed",
        ]
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entrie(s)")
        return ", ".join(parts)


# ---------------------------------------------------------------------- #
# file discovery / package paths
# ---------------------------------------------------------------------- #
def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    yield sub


def package_path(path: Path, scan_root: Path) -> str:
    """Stable package-relative posix path of one file.

    Inside an installed/source tree the anchor is the last ``repro``
    directory component (``src/repro/core/online.py`` -> ``core/online.py``);
    fixture trees without a ``repro`` component anchor at the scan root, so
    the same rules run unchanged over synthetic layouts in tests.
    """
    parts = path.parts
    if "repro" in parts[:-1]:
        anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
        return "/".join(parts[anchor + 1 :])
    try:
        return path.relative_to(scan_root).as_posix()
    except ValueError:
        return path.name


def find_project_root(start: Path) -> Optional[Path]:
    """Nearest ancestor holding ``pyproject.toml`` (the repo root)."""
    node = start if start.is_dir() else start.parent
    for candidate in (node, *node.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


# ---------------------------------------------------------------------- #
# the driver
# ---------------------------------------------------------------------- #
def run_lint(
    paths: Sequence,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Run ``rules`` over every Python file under ``paths``.

    Findings suppressed inline or absorbed by ``baseline`` are counted
    but not reported; the caller decides the exit code from
    :attr:`LintResult.ok`.
    """
    if rules is None:
        from repro.analysis.lint.rules import all_rules

        rules = all_rules()
    path_objs = [Path(p) for p in paths]
    scan_root = path_objs[0] if path_objs and path_objs[0].is_dir() else Path(".")
    modules: List[Module] = []
    result = LintResult()
    for file_path in iter_python_files(path_objs):
        source = file_path.read_text(encoding="utf-8")
        try:
            modules.append(
                Module(file_path, package_path(file_path, scan_root), source)
            )
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule="parse-error",
                    path=str(file_path),
                    pkg_path=package_path(file_path, scan_root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    result.n_files = len(modules)
    project = Project(modules, root=find_project_root(scan_root.resolve()))

    raw: List[Finding] = []
    for rule in rules:
        for module in modules:
            raw.extend(rule.visit_module(module))
        raw.extend(rule.finalize(project))

    by_pkg = {module.pkg_path: module for module in modules}
    visible: List[Finding] = []
    for finding in raw:
        module = by_pkg.get(finding.pkg_path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            result.suppressed += 1
            continue
        visible.append(finding)
    if baseline is not None:
        visible, absorbed, stale = baseline.filter(visible)
        result.baselined = absorbed
        result.stale_baseline = stale
    visible.sort(key=lambda f: (f.pkg_path, f.line, f.col, f.rule))
    result.findings.extend(visible)
    result.findings.sort(key=lambda f: (f.pkg_path, f.line, f.col, f.rule))
    return result
