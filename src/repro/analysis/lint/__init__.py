"""`repro lint`: invariant-checking static analysis for this repository.

Every scaling PR rests on contracts that are otherwise only checked
*dynamically* — bit-identical RNG draw order across the serial / process /
distributed executors, pickle-safe checkpoint state, wire-schema and
spec↔CLI consistency.  A violation is caught (if at all) by an expensive
differential test long after the offending line was written.  This package
proves those invariants over the *program structure* instead: an
AST-walking rule engine that fails in seconds, wired into CI and into the
tier-1 test suite (``tests/analysis/test_repo_clean.py``).

Layout:

* :mod:`~repro.analysis.lint.engine` — module loading, plane detection,
  inline ``# repro-lint: disable=RULE`` suppressions, rule driver;
* :mod:`~repro.analysis.lint.baseline` — the committed grandfather file
  (``lint-baseline.json``): content-addressed entries with justifications;
* :mod:`~repro.analysis.lint.rules_determinism` — RNG discipline,
  wall-clock reads, nondeterministic ``set`` iteration;
* :mod:`~repro.analysis.lint.rules_concurrency` — checkpoint pickle
  safety, lock-scope hygiene;
* :mod:`~repro.analysis.lint.rules_registry` — wire-schema verb
  consistency, spec/CLI drift, metric naming/documentation;
* :mod:`~repro.analysis.lint.cli` — the ``repro lint`` subcommand
  (exit 0 clean / 1 findings).

The rule catalog, the suppression workflow and the baseline format are
documented in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from repro.analysis.lint.baseline import Baseline, BaselineEntry
from repro.analysis.lint.engine import (
    Finding,
    LintResult,
    Module,
    Project,
    Rule,
    run_lint,
)
from repro.analysis.lint.rules import all_rules, rule_names

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "rule_names",
    "run_lint",
]
