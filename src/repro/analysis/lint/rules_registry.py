"""Registry-consistency rules: wire schema, spec/CLI drift, metric names.

These rules consume the repo's machine-readable registries *statically*:
``MESSAGE_TYPES`` in ``api/schema.py`` (the wire-verb vocabulary),
the ``metadata["cli"]`` field annotations plus ``NON_CLI_FIELDS`` in
``api/specs.py`` (the spec↔CLI contract), and ``docs/API.md`` (the
documented metric catalog).  They are cross-file rules, so they run in
:meth:`Rule.finalize` after every module has been parsed — and they are
silent when the registry module is outside the scanned set, so linting a
single file stays noise-free.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.engine import Finding, Module, Project, Rule

#: Registered metric family names must match this (and be documented).
METRIC_NAME_RE = re.compile(r"^retrasyn_[a-z_]+$")

#: Calls that *decode* a verb: (callable name, position of the verb arg).
_DECODE_CALLS = {
    "loads": 1, "loads_any": 1, "iter_frames": 1, "_validate": 1,
    "load_frame": 2,
}


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _find_module(
    project: Project, suffix: str, marker: Optional[str] = None
) -> Optional[Module]:
    """The scanned module whose package path ends with ``suffix`` (and
    whose source mentions ``marker``, to skip unrelated same-named files)."""
    for module in project.modules:
        if module.pkg_path.endswith(suffix):
            if marker is None or marker in module.source:
                return module
    return None


class SchemaVerbRule(Rule):
    """Every declared wire verb has an encoder and a decoder arm."""

    name = "schema-orphan-verb"
    severity = "error"
    description = (
        "every verb in api/schema.py MESSAGE_TYPES must have both an "
        "encoder (message(...)) and a decoder (expect=/type dispatch) "
        "somewhere in the tree, and no site may use an undeclared verb"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        schema_mod = _find_module(project, "schema.py", marker="MESSAGE_TYPES")
        if schema_mod is None:
            return
        declared = self._declared_verbs(schema_mod)
        if declared is None:
            return
        verbs, decl_node = declared
        encoded: Dict[str, Tuple[Module, ast.AST]] = {}
        decoded: Dict[str, Tuple[Module, ast.AST]] = {}
        for module in project.modules:
            for verb, node in self._encode_sites(module):
                encoded.setdefault(verb, (module, node))
            for verb, node in self._decode_sites(module):
                decoded.setdefault(verb, (module, node))
        for verb in verbs:
            if verb not in encoded:
                yield schema_mod.finding(
                    self, decl_node,
                    f"verb {verb!r} is declared but nothing encodes it "
                    "(no message(...) site) — orphan verb",
                )
            if verb not in decoded:
                yield schema_mod.finding(
                    self, decl_node,
                    f"verb {verb!r} is declared but nothing decodes it "
                    "(no expect=/type-dispatch site) — orphan verb",
                )
        for verb, (module, node) in sorted(encoded.items()):
            if verb not in verbs:
                yield module.finding(
                    self, node,
                    f"message type {verb!r} is not declared in "
                    "api/schema.py MESSAGE_TYPES",
                )
        for verb, (module, node) in sorted(decoded.items()):
            if verb not in verbs:
                yield module.finding(
                    self, node,
                    f"expected message type {verb!r} is not declared in "
                    "api/schema.py MESSAGE_TYPES",
                )

    def _declared_verbs(
        self, module: Module
    ) -> Optional[Tuple[Set[str], ast.AST]]:
        for node in module.tree.body:
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AnnAssign)
                else []
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "MESSAGE_TYPES":
                    value = node.value
                    if isinstance(value, (ast.Tuple, ast.List)):
                        verbs = {
                            v for v in map(_str_const, value.elts)
                            if v is not None
                        }
                        return verbs, node
        return None

    def _encode_sites(
        self, module: Module
    ) -> Iterable[Tuple[str, ast.AST]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            callee = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if callee != "message":
                continue
            verb = _str_const(node.args[0])
            if verb is not None:
                yield verb, node

    def _decode_sites(
        self, module: Module
    ) -> Iterable[Tuple[str, ast.AST]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "expect":
                        verb = _str_const(kw.value)
                        if verb is not None:
                            yield verb, node
                func = node.func
                callee = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None
                )
                pos = _DECODE_CALLS.get(callee or "")
                if pos is not None and len(node.args) > pos:
                    verb = _str_const(node.args[pos])
                    if verb is not None:
                        yield verb, node
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                    continue
                left, right = node.left, node.comparators[0]
                for const, other in ((right, left), (left, right)):
                    verb = _str_const(const)
                    if verb is None:
                        continue
                    try:
                        other_src = ast.unparse(other)
                    except Exception:  # pragma: no cover - defensive
                        continue
                    # `type_ == "verb"` / `msg["type"] == "verb"` — but not
                    # `arr.dtype.byteorder == ">"` (substring inside a word).
                    if re.search(r"(?:^|[^\w])type_?(?:[^\w]|$)", other_src):
                        yield verb, node
                        break


class SpecDriftRule(Rule):
    """Every ``*Spec`` field is CLI-exposed or deliberately not."""

    name = "spec-flag-drift"
    severity = "error"
    description = (
        "every *Spec dataclass field carries CLI metadata or a "
        "NON_CLI_FIELDS justification; flags stay unique; ServeSettings "
        "mirrors every CLI-exposed ServiceSpec field"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        specs_mod = _find_module(project, "specs.py", marker="Spec")
        if specs_mod is None:
            return
        non_cli = self._non_cli_fields(specs_mod)
        seen_flags: Dict[str, str] = {}
        cli_fields: Dict[str, List[str]] = {}
        all_fields: Set[Tuple[str, str]] = set()
        for cls in specs_mod.tree.body:
            if not isinstance(cls, ast.ClassDef) or not cls.name.endswith("Spec"):
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                fname = stmt.target.id
                ann = ast.unparse(stmt.annotation)
                # Layer-composition fields (SessionSpec.privacy etc.) are
                # specs themselves, not knobs.
                if ann.rstrip('"').endswith("Spec"):
                    continue
                all_fields.add((cls.name, fname))
                flag = self._cli_flag(stmt.value)
                if flag is not None:
                    cli_fields.setdefault(cls.name, []).append(fname)
                    prior = seen_flags.get(flag)
                    if prior is not None:
                        yield specs_mod.finding(
                            self, stmt,
                            f"CLI flag {flag!r} of {cls.name}.{fname} "
                            f"collides with {prior}",
                        )
                    seen_flags[flag] = f"{cls.name}.{fname}"
                elif fname not in non_cli:
                    yield specs_mod.finding(
                        self, stmt,
                        f"{cls.name}.{fname} has neither CLI metadata nor a "
                        "NON_CLI_FIELDS justification — the flag surface "
                        "and the spec are drifting",
                    )
        field_names = {fname for _, fname in all_fields}
        for fname, node in non_cli.items():
            if fname not in field_names:
                yield specs_mod.finding(
                    self, node,
                    f"NON_CLI_FIELDS entry {fname!r} matches no *Spec "
                    "field — stale justification",
                )
        yield from self._check_serve_mirrors(
            project, specs_mod, cli_fields.get("ServiceSpec", [])
        )

    def _check_serve_mirrors(
        self,
        project: Project,
        specs_mod: Module,
        cli_service_fields: List[str],
    ) -> Iterable[Finding]:
        serve_mod = _find_module(project, "serve.py", marker="ServeSettings")
        if serve_mod is None or not cli_service_fields:
            return
        for cls in serve_mod.tree.body:
            if not isinstance(cls, ast.ClassDef) or cls.name != "ServeSettings":
                continue
            declared = {
                stmt.target.id
                for stmt in cls.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            for fname in cli_service_fields:
                if fname not in declared:
                    yield serve_mod.finding(
                        self, cls,
                        f"ServiceSpec.{fname} is CLI-exposed but "
                        "ServeSettings declares no mirror field — the "
                        "serve flag would silently stop reaching the "
                        "service layer",
                    )

    def _cli_flag(self, value: Optional[ast.AST]) -> Optional[str]:
        """The ``--flag`` of a ``field(metadata=_cli("--flag", ...))``."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        callee = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if callee != "field":
            return None
        for kw in value.keywords:
            if kw.arg != "metadata":
                continue
            for node in ast.walk(kw.value):
                if isinstance(node, ast.Call):
                    inner = node.func
                    inner_name = (
                        inner.id if isinstance(inner, ast.Name)
                        else inner.attr if isinstance(inner, ast.Attribute)
                        else None
                    )
                    if inner_name == "_cli" and node.args:
                        return _str_const(node.args[0])
                # Literal {"cli": {"flag": "--x", ...}} metadata.
                if isinstance(node, ast.Dict):
                    for key, val in zip(node.keys, node.values):
                        if _str_const(key) == "flag":
                            return _str_const(val)
        return None

    def _non_cli_fields(self, module: Module) -> Dict[str, ast.AST]:
        """Parse ``NON_CLI_FIELDS = {"field": "reason", ...}``."""
        out: Dict[str, ast.AST] = {}
        for node in module.tree.body:
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AnnAssign)
                else []
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "NON_CLI_FIELDS"
                    and isinstance(node.value, ast.Dict)
                ):
                    for key in node.value.keys:
                        name = _str_const(key)
                        if name is not None:
                            out[name] = node
        return out


class MetricNameRule(Rule):
    """Metric families follow the naming contract and are documented."""

    name = "metric-name"
    severity = "error"
    description = (
        "registered metric families must match retrasyn_[a-z_]+ and "
        "appear in docs/API.md"
    )

    def __init__(self) -> None:
        self._registered: List[Tuple[Module, ast.AST, str]] = []

    def visit_module(self, module: Module) -> Iterable[Finding]:
        if module.pkg_path.endswith("obs/metrics.py"):
            return  # the registry implementation itself
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in {"counter", "gauge", "histogram"}:
                continue
            name = _str_const(node.args[0])
            if name is None:
                continue
            self._registered.append((module, node, name))
            if not METRIC_NAME_RE.match(name):
                yield module.finding(
                    self, node,
                    f"metric family {name!r} violates the naming contract "
                    "retrasyn_[a-z_]+",
                )

    def finalize(self, project: Project) -> Iterable[Finding]:
        registered, self._registered = self._registered, []
        doc = project.read_doc("docs/API.md")
        if doc is None:
            return
        reported: Set[str] = set()
        for module, node, name in registered:
            if not METRIC_NAME_RE.match(name) or name in reported:
                continue
            if name not in doc:
                reported.add(name)
                yield module.finding(
                    self, node,
                    f"metric family {name!r} is not documented in "
                    "docs/API.md (metrics table)",
                )
