"""The default rule set of ``repro lint``.

One place lists every shipped rule so the CLI, the importable API and the
docs agree on the catalog.  Rules are cheap, stateless-per-run objects;
``all_rules()`` returns fresh instances so concurrent runs never share
accumulator state.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.lint.engine import Rule
from repro.analysis.lint.rules_concurrency import LockScopeRule, PickleSafetyRule
from repro.analysis.lint.rules_determinism import (
    RngGlobalStateRule,
    SetIterationRule,
    WallClockRule,
)
from repro.analysis.lint.rules_registry import (
    MetricNameRule,
    SchemaVerbRule,
    SpecDriftRule,
)

_RULE_CLASSES = (
    RngGlobalStateRule,
    WallClockRule,
    SetIterationRule,
    PickleSafetyRule,
    LockScopeRule,
    SchemaVerbRule,
    SpecDriftRule,
    MetricNameRule,
)


def all_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh instances of every shipped rule (optionally a subset)."""
    rules = [cls() for cls in _RULE_CLASSES]
    if only is None:
        return rules
    wanted = set(only)
    unknown = wanted - {rule.name for rule in rules}
    if unknown:
        raise ValueError(f"unknown rule name(s): {sorted(unknown)}")
    return [rule for rule in rules if rule.name in wanted]


def rule_names() -> List[str]:
    return [cls().name for cls in _RULE_CLASSES]
