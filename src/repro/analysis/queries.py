"""Ad-hoc spatio-temporal queries over a trajectory database.

These are the downstream tasks the paper's introduction motivates (traffic
monitoring, congestion prediction, emergency response).  They run equally on
real and synthetic databases; in the private deployment only the synthetic
one is available — and by the post-processing property (Theorem 2) querying
it costs no additional privacy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.point import BoundingBox
from repro.stream.stream import StreamDataset


class TrajectoryAnalyzer:
    """Query layer over one :class:`StreamDataset`."""

    def __init__(self, dataset: StreamDataset) -> None:
        self.dataset = dataset
        self.grid = dataset.grid
        self._counts = dataset.cell_counts_matrix()

    # ------------------------------------------------------------------ #
    # counting queries
    # ------------------------------------------------------------------ #
    def range_count(
        self,
        region: BoundingBox,
        t_from: int = 0,
        t_to: Optional[int] = None,
    ) -> int:
        """Points inside ``region`` during ``[t_from, t_to]`` (inclusive)."""
        t_to = self._clip_t(t_to)
        cells = np.asarray(self.grid.cells_in_region(region), dtype=np.int64)
        if cells.size == 0:
            return 0
        return int(self._counts[t_from : t_to + 1][:, cells].sum())

    def active_users(self, t: int) -> int:
        """Streams reporting at timestamp ``t``."""
        return int(self._counts[t].sum())

    def occupancy_series(self, region: BoundingBox) -> np.ndarray:
        """Per-timestamp point counts inside ``region``."""
        cells = np.asarray(self.grid.cells_in_region(region), dtype=np.int64)
        if cells.size == 0:
            return np.zeros(self.dataset.n_timestamps, dtype=np.int64)
        return self._counts[:, cells].sum(axis=1)

    # ------------------------------------------------------------------ #
    # hotspot / popularity queries
    # ------------------------------------------------------------------ #
    def top_k_cells(
        self, k: int = 10, t_from: int = 0, t_to: Optional[int] = None
    ) -> list[tuple[int, int]]:
        """The ``k`` busiest cells in a time window, as (cell, count)."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        t_to = self._clip_t(t_to)
        totals = self._counts[t_from : t_to + 1].sum(axis=0)
        order = np.argsort(totals, kind="stable")[::-1][:k]
        return [(int(c), int(totals[c])) for c in order]

    def visit_share(self, cell: int) -> float:
        """Fraction of all points falling in ``cell`` over the horizon."""
        total = self._counts.sum()
        if total == 0:
            return 0.0
        return float(self._counts[:, cell].sum() / total)

    def density(self, t: int) -> np.ndarray:
        """Normalised spatial distribution at timestamp ``t``."""
        row = self._counts[t].astype(float)
        total = row.sum()
        if total == 0:
            return np.full(row.size, 1.0 / row.size)
        return row / total

    # ------------------------------------------------------------------ #
    # trip-level queries
    # ------------------------------------------------------------------ #
    def trip_lengths(self) -> np.ndarray:
        """Number of reports per stream."""
        return np.asarray([len(t) for t in self.dataset.trajectories])

    def od_matrix(self) -> np.ndarray:
        """Origin-destination counts: ``od[i, j]`` trips from cell i to j."""
        n = self.grid.n_cells
        od = np.zeros((n, n), dtype=np.int64)
        for traj in self.dataset.trajectories:
            if len(traj) > 0:
                od[traj.cells[0], traj.cells[-1]] += 1
        return od

    def busiest_trips(self, k: int = 5) -> list[tuple[tuple[int, int], int]]:
        """Top-``k`` (origin, destination) pairs by trip count."""
        od = self.od_matrix()
        flat = np.argsort(od, axis=None, kind="stable")[::-1][:k]
        out = []
        for idx in flat:
            i, j = divmod(int(idx), od.shape[1])
            out.append(((i, j), int(od[i, j])))
        return out

    # ------------------------------------------------------------------ #
    def _clip_t(self, t_to: Optional[int]) -> int:
        horizon = self.dataset.n_timestamps - 1
        if t_to is None:
            return horizon
        return min(int(t_to), horizon)
