"""Observability: the internal metrics registry behind ``GET /metrics``.

Stdlib-only. The registry is owned by the session layer (never pickled
into checkpoints) and rendered in the Prometheus text exposition format
by the HTTP ingress.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "MetricsRegistry",
]
