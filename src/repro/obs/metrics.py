"""A minimal Prometheus-compatible metrics registry (stdlib only).

Three metric kinds — counters, gauges, histograms — each optionally
labelled, rendered in the text exposition format (``text/plain;
version=0.0.4``). Counters and gauges can be *projected* from existing
state via ``set_function``: the callback is evaluated at scrape time, so
hot paths pay nothing and the registry never duplicates bookkeeping the
engines already do (``IngestStats``, accountant ledgers, curator phase
timings). A callback that raises drops only its own sample from the
scrape — a dead shard pool must not take ``/metrics`` down with it.

The registry lives on the session object, never on the curator: curator
``checkpoint_state()`` pickles ``__dict__`` wholesale and metrics must
not leak into checkpoints.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["DEFAULT_BUCKETS", "PROMETHEUS_CONTENT_TYPE", "MetricsRegistry"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency buckets (seconds) sized for sub-millisecond rounds at smoke
#: scale up to multi-second rounds at millions of users.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def _label_suffix(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    parts = [
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    ]
    return "{" + ",".join(parts) + "}"


class _ValueChild:
    """A single counter/gauge time series: stored value or callback."""

    __slots__ = ("_value", "_fn", "_lock", "_monotonic")

    def __init__(self, monotonic: bool):
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()
        self._monotonic = monotonic

    def inc(self, amount: float = 1.0) -> None:
        if self._monotonic and amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        if self._monotonic:
            raise ConfigurationError("counters cannot be set, only inc()ed")
        with self._lock:
            self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Project this series from existing state, evaluated at scrape."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class _HistogramChild:
    """A single histogram series: bucket counts, sum and count."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Tuple[float, ...]):
        self._bounds = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            # Per-bucket counts; render() accumulates into the cumulative
            # `le` series the exposition format wants.
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += 1
                    break

    def snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count


class _Family:
    """One named metric with zero or more labelled children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ConfigurationError(f"invalid label name {label!r}")
        if kind == "histogram":
            buckets = tuple(sorted(float(b) for b in buckets))
            if not buckets:
                raise ConfigurationError("histogram needs at least one bucket")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "counter":
            return _ValueChild(monotonic=True)
        if self.kind == "gauge":
            return _ValueChild(monotonic=False)
        return _HistogramChild(self._buckets)

    def labels(self, *values) -> object:
        if len(values) != len(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes {len(self.labelnames)} label "
                f"value(s), got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    # Unlabelled convenience: a family with no label names behaves as a
    # single series, so call sites read ``registry.counter(...).inc()``.
    def _sole(self):
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labelled; use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def set(self, value: float) -> None:
        self._sole().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._sole().set_function(fn)

    def observe(self, value: float) -> None:
        self._sole().observe(value)

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {_escape_help(self.help)}"
        yield f"# TYPE {self.name} {self.kind}"
        with self._lock:
            children = sorted(self._children.items())
        for key, child in children:
            suffix = _label_suffix(self.labelnames, key)
            try:
                if self.kind == "histogram":
                    counts, total, count = child.snapshot()
                    cumulative = 0
                    for bound, n in zip(self._buckets, counts):
                        cumulative += n
                        le = _label_suffix(
                            self.labelnames + ("le",),
                            key + (_format_value(bound),),
                        )
                        yield f"{self.name}_bucket{le} {cumulative}"
                    le = _label_suffix(
                        self.labelnames + ("le",), key + ("+Inf",)
                    )
                    yield f"{self.name}_bucket{le} {count}"
                    yield f"{self.name}_sum{suffix} {_format_value(total)}"
                    yield f"{self.name}_count{suffix} {count}"
                else:
                    value = child.value  # may invoke a callback
                    yield f"{self.name}{suffix} {_format_value(value)}"
            except Exception:
                # A broken callback (dead pool, closed session) drops its
                # own sample; the rest of the scrape must survive.
                continue


class MetricsRegistry:
    """Create-or-get metric families and render the exposition text."""

    def __init__(self):
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Family:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = _Family(name, help_text, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Family:
        return self._family(name, help_text, "histogram", labelnames, buckets)

    def render(self) -> str:
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""
