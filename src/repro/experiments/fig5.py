"""Figure 5: impact of the evaluation time-range size φ.

Sweeps φ over {5, 10, 20, 50, 100} on Query Error, Pattern F1 and Hotspot
NDCG for T-Drive and Oldenburg.  Only the *evaluation* changes with φ, so
each method is run once per dataset and re-scored per φ.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentSetting,
    make_method,
    standard_datasets,
)
from repro.metrics.registry import evaluate_all

FIG5_METRICS = ("query_error", "pattern_f1", "hotspot_ndcg")
DEFAULT_PHIS = (5, 10, 20, 50, 100)


def run_fig5(
    setting: ExperimentSetting = ExperimentSetting(),
    phis: Sequence[int] = DEFAULT_PHIS,
    datasets: Optional[Sequence[str]] = ("tdrive", "oldenburg"),
    methods: Sequence[str] = ALL_METHODS,
    metrics: Sequence[str] = FIG5_METRICS,
) -> dict:
    """``results[dataset][metric][method][phi] -> score``."""
    data = standard_datasets(setting, datasets)
    results: dict = {
        name: {metric: {m: {} for m in methods} for metric in metrics}
        for name in data
    }
    for name, dataset in data.items():
        for method in methods:
            algo = make_method(
                method,
                epsilon=setting.epsilon,
                w=setting.w,
                seed=setting.seed,
                allocator=setting.allocator,
            )
            run = algo.run(dataset)
            for phi in phis:
                scores = evaluate_all(
                    dataset, run.synthetic, phi=phi, metrics=metrics, rng=setting.seed
                )
                for metric, score in scores.items():
                    results[name][metric][method][phi] = score
    return results


def format_fig5(results: dict) -> str:
    blocks = []
    for dataset, per_metric in results.items():
        for metric, per_method in per_metric.items():
            phis = sorted({p for cells in per_method.values() for p in cells})
            blocks.append(
                format_table(
                    f"Figure 5 — {dataset} — {metric} vs phi",
                    per_method,
                    phis,
                    col_header="phi",
                    best_of=metric,
                )
            )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_fig5(run_fig5()))


if __name__ == "__main__":  # pragma: no cover
    main()
