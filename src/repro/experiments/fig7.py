"""Figure 7: scalability — runtime versus dataset size.

Subsamples each dataset to {20%, 40%, 60%, 80%, 100%} of its streams and
reports the average per-timestamp runtime of RetraSyn_b and RetraSyn_p.
The paper's observation to reproduce: runtime grows linearly with size and
population division is slightly cheaper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.runner import ExperimentSetting, make_method, standard_datasets
from repro.rng import ensure_rng

DEFAULT_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
FIG7_METHODS = ("RetraSyn_b", "RetraSyn_p")


def run_fig7(
    setting: ExperimentSetting = ExperimentSetting(),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = FIG7_METHODS,
) -> dict:
    """``results[method][dataset][fraction] -> seconds per timestamp``."""
    data = standard_datasets(setting, datasets)
    rng = ensure_rng(setting.seed)
    results: dict = {m: {n: {} for n in data} for m in methods}
    for name, dataset in data.items():
        for frac in fractions:
            sub = dataset if frac >= 1.0 else dataset.subsample(frac, rng)
            for method in methods:
                algo = make_method(
                    method,
                    epsilon=setting.epsilon,
                    w=setting.w,
                    seed=setting.seed,
                    allocator=setting.allocator,
                )
                run = algo.run(sub)
                results[method][name][frac] = run.total_runtime / max(
                    1, sub.n_timestamps
                )
    return results


def linearity_score(per_fraction: dict[float, float]) -> float:
    """Pearson correlation of runtime with size (≈1 ⇒ linear growth)."""
    fracs = sorted(per_fraction)
    times = [per_fraction[f] for f in fracs]
    if len(fracs) < 3 or np.std(times) == 0:
        return 1.0
    return float(np.corrcoef(fracs, times)[0, 1])


def format_fig7(results: dict) -> str:
    lines = ["Figure 7 — scalability: seconds per timestamp", "=" * 48]
    for method, per_dataset in results.items():
        lines.append(f"\n[{method}]")
        for name, per_frac in per_dataset.items():
            fracs = sorted(per_frac)
            row = "  ".join(f"{f:.0%}: {per_frac[f]:.4f}" for f in fracs)
            lines.append(
                f"  {name:12s} {row}  (linearity r={linearity_score(per_frac):.3f})"
            )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_fig7(run_fig7()))


if __name__ == "__main__":  # pragma: no cover
    main()
