"""Extension experiment: utility versus population size.

Figure 7 varies the dataset size but only reports *runtime*.  Equation 3
(``Var ∝ 1/n``) implies a utility story too: with more reporting users the
per-round estimates sharpen and every error metric should improve.  This
experiment subsamples each dataset and traces utility across population
sizes — the empirical counterpart of the planning module's noise
prediction (``repro.planning``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import (
    ExperimentSetting,
    make_method,
    standard_datasets,
)
from repro.metrics.registry import evaluate_all
from repro.rng import ensure_rng

DEFAULT_FRACTIONS = (0.25, 0.5, 1.0)
DEFAULT_METRICS = ("density_error", "transition_error")


def run_population_utility(
    setting: ExperimentSetting = ExperimentSetting(),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    datasets: Optional[Sequence[str]] = ("tdrive",),
    method: str = "RetraSyn_p",
    metrics: Sequence[str] = DEFAULT_METRICS,
    n_repeats: int = 3,
) -> dict:
    """``results[dataset][metric][fraction] -> mean score over repeats``.

    Each fraction is evaluated ``n_repeats`` times with different
    subsampling/pipeline seeds and averaged, since small populations are
    noisy by construction.
    """
    data = standard_datasets(setting, datasets)
    results: dict = {
        name: {metric: {} for metric in metrics} for name in data
    }
    for name, dataset in data.items():
        for frac in fractions:
            totals = {metric: 0.0 for metric in metrics}
            for rep in range(n_repeats):
                rng = ensure_rng(setting.seed + 1000 * rep)
                sub = dataset if frac >= 1.0 else dataset.subsample(frac, rng)
                run = make_method(
                    method,
                    epsilon=setting.epsilon,
                    w=setting.w,
                    seed=setting.seed + rep,
                    allocator=setting.allocator,
                ).run(sub)
                scores = evaluate_all(
                    sub, run.synthetic, phi=setting.phi,
                    metrics=metrics, rng=setting.seed + rep,
                )
                for metric, v in scores.items():
                    totals[metric] += v
            for metric in metrics:
                results[name][metric][frac] = totals[metric] / n_repeats
    return results


def format_population_utility(results: dict) -> str:
    blocks = []
    for dataset, per_metric in results.items():
        fractions = sorted(
            {f for cells in per_metric.values() for f in cells}
        )
        blocks.append(
            format_table(
                f"Utility vs population size — {dataset}",
                per_metric,
                fractions,
                col_header="metric \\ frac",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_population_utility(run_population_utility()))


if __name__ == "__main__":  # pragma: no cover
    main()
