"""Table IV: ablation of the DMU mechanism and entering/quitting events.

Compares AllUpdate_b/p (no significant-transition selection) and NoEQ_b/p
(no enter/quit modelling) with full RetraSyn at ε = 1.0 on all metrics.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import (
    ABLATION_METHODS,
    RETRASYN_METHODS,
    ExperimentSetting,
    run_method,
    standard_datasets,
)
from repro.metrics.registry import ALL_METRICS

TABLE4_METHODS = ABLATION_METHODS + RETRASYN_METHODS


def run_table4(
    setting: ExperimentSetting = ExperimentSetting(epsilon=1.0),
    datasets: Optional[Sequence[str]] = None,
    metrics: Sequence[str] = ALL_METRICS,
) -> dict:
    """``results[dataset][method][metric] -> score``."""
    data = standard_datasets(setting, datasets)
    results: dict = {}
    for name, dataset in data.items():
        results[name] = {}
        for method in TABLE4_METHODS:
            res = run_method(dataset, method, setting, metrics=metrics)
            results[name][method] = res.scores
    return results


def format_table4(results: dict) -> str:
    blocks = []
    for dataset, per_method in results.items():
        metrics = list(next(iter(per_method.values())).keys())
        blocks.append(
            format_table(
                f"Table IV — {dataset} (epsilon=1.0)",
                per_method,
                metrics,
                col_header="model",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_table4(run_table4()))


if __name__ == "__main__":  # pragma: no cover
    main()
