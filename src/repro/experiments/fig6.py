"""Figure 6: impact of the discretisation granularity K.

For K in {2, 6, 10, 14, 18}, regenerates each dataset on a K×K grid and
reports both the Query Error (utility) and the average per-timestamp
runtime of RetraSyn_b and RetraSyn_p — the paper's bar-plus-line figure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.experiments.runner import ExperimentSetting, make_method
from repro.metrics.query import query_error

DEFAULT_KS = (2, 6, 10, 14, 18)
FIG6_METHODS = ("RetraSyn_b", "RetraSyn_p")


def run_fig6(
    setting: ExperimentSetting = ExperimentSetting(),
    ks: Sequence[int] = DEFAULT_KS,
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = FIG6_METHODS,
) -> dict:
    """``results[method][dataset][K] -> {"query_error", "runtime_per_ts"}``."""
    names = datasets or ("tdrive", "oldenburg", "sanjoaquin")
    results: dict = {m: {n: {} for n in names} for m in methods}
    for name in names:
        for k in ks:
            dataset = load_dataset(name, scale=setting.scale, k=k, seed=setting.seed)
            for method in methods:
                algo = make_method(
                    method,
                    epsilon=setting.epsilon,
                    w=setting.w,
                    seed=setting.seed,
                    allocator=setting.allocator,
                )
                run = algo.run(dataset)
                qe = query_error(
                    dataset, run.synthetic, phi=setting.phi, rng=setting.seed
                )
                results[method][name][k] = {
                    "query_error": qe,
                    "runtime_per_ts": run.total_runtime / max(1, dataset.n_timestamps),
                }
    return results


def format_fig6(results: dict) -> str:
    lines = ["Figure 6 — granularity K: query error / runtime-per-ts (s)", "=" * 62]
    for method, per_dataset in results.items():
        lines.append(f"\n[{method}]")
        for name, per_k in per_dataset.items():
            ks = sorted(per_k)
            qe = "  ".join(f"K={k}: {per_k[k]['query_error']:.4f}" for k in ks)
            rt = "  ".join(f"K={k}: {per_k[k]['runtime_per_ts']:.4f}" for k in ks)
            lines.append(f"  {name:12s} query error  {qe}")
            lines.append(f"  {name:12s} runtime      {rt}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_fig6(run_fig6()))


if __name__ == "__main__":  # pragma: no cover
    main()
