"""Extension experiment: streaming (RetraSyn) vs one-shot historical
(LDPTrace-style) release.

Not a paper table — it quantifies the claim of the paper's introduction:
historical frameworks cannot stream, and a streaming framework should stay
competitive on *historical* (trajectory-level) metrics while additionally
supporting real-time release.  We score both methods on the historical
metrics plus overall spatial fidelity.

Caveats that make this a fair framing rather than a horse race: the
LDPTrace-style release is user-level LDP over a single report, RetraSyn is
w-event LDP over the stream; LDPTrace sees trajectory lengths up front,
RetraSyn never does.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.ldptrace import LDPTraceConfig, LDPTraceSynthesizer
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentSetting, make_method, standard_datasets
from repro.metrics.kendall import kendall_tau
from repro.metrics.length import length_error
from repro.metrics.trip import trip_error

HISTORICAL_METRICS = ("kendall_tau", "trip_error", "length_error")


def _score(real, syn) -> dict[str, float]:
    return {
        "kendall_tau": kendall_tau(real, syn),
        "trip_error": trip_error(real, syn),
        "length_error": length_error(real, syn),
    }


def run_historical(
    setting: ExperimentSetting = ExperimentSetting(),
    datasets: Optional[Sequence[str]] = ("tdrive",),
) -> dict:
    """``results[dataset][method][metric] -> score``."""
    data = standard_datasets(setting, datasets)
    results: dict = {}
    for name, dataset in data.items():
        results[name] = {}
        run = make_method(
            "RetraSyn_p",
            epsilon=setting.epsilon,
            w=setting.w,
            seed=setting.seed,
            allocator=setting.allocator,
        ).run(dataset)
        results[name]["RetraSyn_p (streaming)"] = _score(dataset, run.synthetic)

        release = LDPTraceSynthesizer(
            LDPTraceConfig(epsilon=setting.epsilon, seed=setting.seed)
        ).run(dataset)
        results[name]["LDPTrace (one-shot)"] = _score(dataset, release.synthetic)
    return results


def format_historical(results: dict) -> str:
    blocks = []
    for dataset, per_method in results.items():
        blocks.append(
            format_table(
                f"Streaming vs historical release — {dataset}",
                per_method,
                HISTORICAL_METRICS,
                col_header="method",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_historical(run_historical()))


if __name__ == "__main__":  # pragma: no cover
    main()
