"""Plain-text rendering of experiment results.

Tables are printed in the paper's orientation: one block per metric, methods
as rows, sweep values (ε, w, φ, ...) as columns — directly comparable with
Table III / IV and the figure series.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.metrics.registry import HIGHER_IS_BETTER


def format_table(
    title: str,
    rows: Mapping[str, Mapping],
    columns: Sequence,
    col_header: str = "",
    best_of: str | None = None,
) -> str:
    """Render ``rows[method][column] -> value`` as an aligned text table.

    ``best_of`` names the metric so the best value per column is starred
    (direction chosen via :data:`HIGHER_IS_BETTER`).
    """
    col_w = max([12] + [len(str(c)) + 2 for c in columns])
    name_w = max([len(str(r)) for r in rows] + [len(col_header), 12])
    lines = [title, "=" * len(title)]
    header = " " * name_w + "".join(f"{str(c):>{col_w}}" for c in columns)
    if col_header:
        header = f"{col_header:<{name_w}}" + header[name_w:]
    lines.append(header)

    best_per_col: dict = {}
    if best_of is not None:
        larger = best_of in HIGHER_IS_BETTER
        for c in columns:
            vals = [
                rows[m][c]
                for m in rows
                if c in rows[m] and rows[m][c] is not None
            ]
            if vals:
                best_per_col[c] = max(vals) if larger else min(vals)

    for method, cells in rows.items():
        row = f"{str(method):<{name_w}}"
        for c in columns:
            v = cells.get(c)
            if v is None:
                row += f"{'-':>{col_w}}"
                continue
            star = "*" if best_per_col.get(c) == v else " "
            row += f"{v:>{col_w - 1}.4f}{star}"
        lines.append(row)
    return "\n".join(lines)


def format_series(
    title: str,
    series: Mapping[str, Sequence[float]],
    x_values: Sequence,
    x_label: str = "x",
) -> str:
    """Render figure-style line series: one row per method."""
    return format_table(
        title,
        {m: dict(zip(x_values, ys)) for m, ys in series.items()},
        x_values,
        col_header=x_label,
    )
