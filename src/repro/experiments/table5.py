"""Table V: component efficiency of RetraSyn_p.

Average per-timestamp seconds for the four pipeline components:
user-side computation, mobility-model construction, dynamic mobility
update, and real-time synthesis.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import ExperimentSetting, make_method, standard_datasets

COMPONENTS = ("user_side", "model_construction", "dmu", "synthesis", "total")


def run_table5(
    setting: ExperimentSetting = ExperimentSetting(),
    datasets: Optional[Sequence[str]] = None,
    oracle_mode: str = "exact",
    **engine_overrides,
) -> dict:
    """``results[dataset][component] -> avg seconds per timestamp``.

    ``oracle_mode='exact'`` materialises per-user bit vectors (batched) so
    the user-side figure reflects the real protocol cost;
    ``oracle_mode='exact-loop'`` is the sequential per-user reference.
    Extra keyword arguments (``engine=``, ``n_shards=``, …) are forwarded
    to :class:`~repro.core.retrasyn.RetraSynConfig`, so engine speedups are
    measured with the same harness as the paper's Table V.
    """
    data = standard_datasets(setting, datasets)
    results: dict = {}
    for name, dataset in data.items():
        algo = make_method(
            "RetraSyn_p",
            epsilon=setting.epsilon,
            w=setting.w,
            seed=setting.seed,
            oracle_mode=oracle_mode,
            **engine_overrides,
        )
        run = algo.run(dataset)
        results[name] = run.avg_time_per_timestamp()
    return results


def format_table5(results: dict) -> str:
    datasets = list(results)
    name_w = 24
    lines = [
        "Table V — component efficiency of RetraSyn_p (seconds/timestamp)",
        "=" * 66,
        f"{'procedure':<{name_w}}" + "".join(f"{d:>14}" for d in datasets),
    ]
    for comp in COMPONENTS:
        row = f"{comp:<{name_w}}"
        for d in datasets:
            row += f"{results[d].get(comp, 0.0):>14.6f}"
        lines.append(row)
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table5(run_table5()))


if __name__ == "__main__":  # pragma: no cover
    main()
