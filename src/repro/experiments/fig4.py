"""Figure 4: impact of the window size w.

Sweeps w over {10, 20, 30, 40, 50} on Transition Error, Query Error and
Trip Error for T-Drive and Oldenburg, comparing the four baselines against
both RetraSyn divisions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentSetting,
    run_method,
    standard_datasets,
)

FIG4_METRICS = ("transition_error", "query_error", "trip_error")
DEFAULT_WINDOWS = (10, 20, 30, 40, 50)


def run_fig4(
    setting: ExperimentSetting = ExperimentSetting(),
    windows: Sequence[int] = DEFAULT_WINDOWS,
    datasets: Optional[Sequence[str]] = ("tdrive", "oldenburg"),
    methods: Sequence[str] = ALL_METHODS,
    metrics: Sequence[str] = FIG4_METRICS,
) -> dict:
    """``results[dataset][metric][method][w] -> score``."""
    data = standard_datasets(setting, datasets)
    results: dict = {
        name: {metric: {m: {} for m in methods} for metric in metrics}
        for name in data
    }
    for name, dataset in data.items():
        for w in windows:
            cell = replace(setting, w=w)
            for method in methods:
                res = run_method(dataset, method, cell, metrics=metrics)
                for metric, score in res.scores.items():
                    results[name][metric][method][w] = score
    return results


def format_fig4(results: dict) -> str:
    blocks = []
    for dataset, per_metric in results.items():
        for metric, per_method in per_metric.items():
            windows = sorted({w for cells in per_method.values() for w in cells})
            blocks.append(
                format_table(
                    f"Figure 4 — {dataset} — {metric} vs w",
                    per_method,
                    windows,
                    col_header="w",
                    best_of=metric,
                )
            )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_fig4(run_fig4()))


if __name__ == "__main__":  # pragma: no cover
    main()
