"""CSV export of experiment results.

The experiment runners return nested dictionaries shaped like the paper's
tables; this module flattens them into tidy CSV rows (one observation per
line) so the figures can be regenerated with any external plotting tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.exceptions import ConfigurationError


def table3_to_rows(results: dict) -> list[dict]:
    """Flatten ``results[dataset][metric][method][epsilon] -> score``."""
    rows = []
    for dataset, per_metric in results.items():
        for metric, per_method in per_metric.items():
            for method, cells in per_method.items():
                for epsilon, score in cells.items():
                    rows.append(
                        {
                            "dataset": dataset,
                            "metric": metric,
                            "method": method,
                            "epsilon": epsilon,
                            "score": score,
                        }
                    )
    return rows


def sweep_to_rows(results: dict, sweep_name: str) -> list[dict]:
    """Flatten ``results[dataset][metric][method][x] -> score`` sweeps
    (figures 4 and 5; ``sweep_name`` labels the swept column)."""
    rows = []
    for dataset, per_metric in results.items():
        for metric, per_method in per_metric.items():
            for method, cells in per_method.items():
                for x, score in cells.items():
                    rows.append(
                        {
                            "dataset": dataset,
                            "metric": metric,
                            "method": method,
                            sweep_name: x,
                            "score": score,
                        }
                    )
    return rows


def matrix_to_rows(results: dict, value_name: str = "score") -> list[dict]:
    """Flatten ``results[dataset][method][metric] -> score`` matrices
    (Table IV, Figure 3)."""
    rows = []
    for dataset, per_method in results.items():
        for method, scores in per_method.items():
            for metric, score in scores.items():
                rows.append(
                    {
                        "dataset": dataset,
                        "method": method,
                        "metric": metric,
                        value_name: score,
                    }
                )
    return rows


def write_csv(rows: list[dict], path: Union[str, Path]) -> None:
    """Write tidy rows to ``path``; columns come from the first row."""
    if not rows:
        raise ConfigurationError("cannot write an empty result set")
    path = Path(path)
    fieldnames = list(rows[0].keys())
    for i, row in enumerate(rows):
        if list(row.keys()) != fieldnames:
            raise ConfigurationError(
                f"row {i} has columns {list(row)} != {fieldnames}"
            )
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def read_csv(path: Union[str, Path]) -> list[dict]:
    """Read back rows written by :func:`write_csv` (values as strings)."""
    with open(path, newline="") as f:
        return list(csv.DictReader(f))
