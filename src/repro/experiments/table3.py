"""Table III: overall utility vs privacy budget.

For every dataset and ε in {0.5, 1.0, 1.5, 2.0}, run the four LDP-IDS
strategies and both RetraSyn divisions, score all eight metrics, and render
one block per (dataset, metric) with methods as rows and ε as columns —
the exact shape of the paper's Table III.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentSetting,
    run_method,
    standard_datasets,
)
from repro.metrics.registry import ALL_METRICS

DEFAULT_EPSILONS = (0.5, 1.0, 1.5, 2.0)


def run_table3(
    setting: ExperimentSetting = ExperimentSetting(),
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ALL_METHODS,
    metrics: Sequence[str] = ALL_METRICS,
) -> dict:
    """``results[dataset][metric][method][epsilon] -> score``."""
    data = standard_datasets(setting, datasets)
    results: dict = {
        name: {metric: {m: {} for m in methods} for metric in metrics}
        for name in data
    }
    for name, dataset in data.items():
        for eps in epsilons:
            cell = replace(setting, epsilon=eps)
            for method in methods:
                res = run_method(dataset, method, cell, metrics=metrics)
                for metric, score in res.scores.items():
                    results[name][metric][method][eps] = score
    return results


def format_table3(results: dict) -> str:
    """Render all (dataset, metric) blocks."""
    blocks = []
    for dataset, per_metric in results.items():
        for metric, per_method in per_metric.items():
            epsilons = sorted(
                {e for cells in per_method.values() for e in cells}
            )
            blocks.append(
                format_table(
                    f"Table III — {dataset} — {metric}",
                    per_method,
                    epsilons,
                    col_header="epsilon",
                    best_of=metric,
                )
            )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table3(run_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
