"""Generic experiment machinery: method factories and evaluation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.ldp_ids import make_baseline
from repro.core.retrasyn import SynthesisRun
from repro.core.variants import make_all_update, make_no_eq, make_retrasyn
from repro.datasets.registry import load_dataset
from repro.exceptions import ConfigurationError
from repro.metrics.registry import evaluate_all
from repro.rng import RngLike
from repro.stream.stream import StreamDataset

#: Method names in the paper's notation; the canonical comparison set.
BASELINE_METHODS = ("LBD", "LBA", "LPD", "LPA")
RETRASYN_METHODS = ("RetraSyn_b", "RetraSyn_p")
ABLATION_METHODS = ("AllUpdate_b", "AllUpdate_p", "NoEQ_b", "NoEQ_p")
ALL_METHODS = BASELINE_METHODS + RETRASYN_METHODS


@dataclass(frozen=True)
class ExperimentSetting:
    """Shared knobs of one experimental cell (defaults = Table II bold)."""

    epsilon: float = 1.0
    w: int = 20
    phi: int = 10
    k: int = 6
    scale: float = 0.05
    seed: int = 0
    allocator: str = "adaptive"


@dataclass
class MethodResult:
    """One method's synthetic output plus its metric scores."""

    method: str
    setting: ExperimentSetting
    scores: dict[str, float] = field(default_factory=dict)
    run: Optional[SynthesisRun] = None

    @property
    def privacy_ok(self) -> bool:
        if self.run is None or self.run.accountant is None:
            return True
        return self.run.accountant.verify()


def make_method(
    name: str,
    epsilon: float,
    w: int,
    seed: RngLike = None,
    allocator: str = "adaptive",
    **overrides,
):
    """Instantiate a method by its paper name.

    Accepted names: LBD, LBA, LPD, LPA, RetraSyn_b, RetraSyn_p,
    AllUpdate_b, AllUpdate_p, NoEQ_b, NoEQ_p (case-insensitive).
    """
    key = name.lower()
    if key in ("lbd", "lba", "lpd", "lpa"):
        return make_baseline(key, epsilon=epsilon, w=w, seed=seed, **overrides)
    division = {"b": "budget", "p": "population"}.get(key[-1])
    if division is None:
        raise ConfigurationError(f"unknown method {name!r}")
    base = key[: -2]  # strip "_b" / "_p"
    if base == "retrasyn":
        return make_retrasyn(
            division, epsilon=epsilon, w=w, allocator=allocator, seed=seed, **overrides
        )
    if base == "allupdate":
        return make_all_update(division, epsilon=epsilon, w=w, seed=seed, **overrides)
    if base == "noeq":
        return make_no_eq(division, epsilon=epsilon, w=w, seed=seed, **overrides)
    raise ConfigurationError(f"unknown method {name!r}")


def run_method(
    dataset: StreamDataset,
    method: str,
    setting: ExperimentSetting,
    metrics: Optional[Sequence[str]] = None,
    keep_run: bool = False,
    **overrides,
) -> MethodResult:
    """Run one method on one dataset and score it."""
    algo = make_method(
        method,
        epsilon=setting.epsilon,
        w=setting.w,
        seed=setting.seed,
        allocator=setting.allocator,
        **overrides,
    )
    run = algo.run(dataset)
    scores = evaluate_all(
        dataset,
        run.synthetic,
        phi=setting.phi,
        metrics=metrics,
        rng=setting.seed,
    )
    return MethodResult(
        method=method,
        setting=setting,
        scores=scores,
        run=run if keep_run else None,
    )


def standard_datasets(
    setting: ExperimentSetting, names: Optional[Sequence[str]] = None
) -> dict[str, StreamDataset]:
    """The paper's three datasets at the setting's scale and granularity."""
    names = names or ("tdrive", "oldenburg", "sanjoaquin")
    return {
        name: load_dataset(name, scale=setting.scale, k=setting.k, seed=setting.seed)
        for name in names
    }
