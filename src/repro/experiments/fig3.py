"""Figure 3: impact of the allocation strategy.

Compares Adaptive_b/p, Uniform_b/p and Sample (population) on Transition
Error, Query Error and Kendall-tau for T-Drive and Oldenburg.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentSetting, run_method, standard_datasets

FIG3_METRICS = ("transition_error", "query_error", "kendall_tau")
#: (display name, method, allocator).  "Random" is the user-driven
#: alternative the paper discusses at the end of Section III-E.
FIG3_STRATEGIES = (
    ("Adaptive_b", "RetraSyn_b", "adaptive"),
    ("Adaptive_p", "RetraSyn_p", "adaptive"),
    ("Uniform_b", "RetraSyn_b", "uniform"),
    ("Uniform_p", "RetraSyn_p", "uniform"),
    ("Sample", "RetraSyn_p", "sample"),
    ("Random", "RetraSyn_p", "random"),
)


def run_fig3(
    setting: ExperimentSetting = ExperimentSetting(),
    datasets: Optional[Sequence[str]] = ("tdrive", "oldenburg"),
    metrics: Sequence[str] = FIG3_METRICS,
) -> dict:
    """``results[dataset][strategy][metric] -> score``."""
    data = standard_datasets(setting, datasets)
    results: dict = {}
    for name, dataset in data.items():
        results[name] = {}
        for label, method, allocator in FIG3_STRATEGIES:
            cell = replace(setting, allocator=allocator)
            res = run_method(dataset, method, cell, metrics=metrics)
            results[name][label] = res.scores
    return results


def format_fig3(results: dict) -> str:
    blocks = []
    for dataset, per_strategy in results.items():
        metrics = list(next(iter(per_strategy.values())).keys())
        blocks.append(
            format_table(
                f"Figure 3 — allocation strategies — {dataset}",
                per_strategy,
                metrics,
                col_header="strategy",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_fig3(run_fig3()))


if __name__ == "__main__":  # pragma: no cover
    main()
