"""Experiment harness: one module per paper table / figure.

Every experiment exposes a ``run_*`` function returning structured results
and a ``format_*`` function that renders them in the shape of the paper's
table or figure series.  The ``benchmarks/`` tree wraps these same functions
with pytest-benchmark so ``pytest benchmarks/ --benchmark-only`` regenerates
every artefact at laptop scale.
"""

from repro.experiments.runner import (
    ExperimentSetting,
    MethodResult,
    make_method,
    run_method,
    standard_datasets,
)
from repro.experiments.report import format_table, format_series

__all__ = [
    "ExperimentSetting",
    "MethodResult",
    "make_method",
    "run_method",
    "standard_datasets",
    "format_table",
    "format_series",
]
