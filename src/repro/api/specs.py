"""Layered, validated configuration model for curator sessions.

The flat :class:`~repro.core.retrasyn.RetraSynConfig` grew one field per
engine knob across five PRs; by now its 19 fields span four orthogonal
concerns.  This module is the *canonical* configuration surface, splitting
those concerns into composable layers:

* :class:`PrivacySpec` — the privacy contract: budget ``ε``, window ``w``,
  division style, allocation strategy and the ledger engine auditing it.
* :class:`EngineSpec` — which reference/vectorized implementations run each
  pipeline phase (oracle, synthesis, model compilation) and the modelling
  switches of the paper's ablations.
* :class:`ShardingSpec` — horizontal parallelism: collection shards and
  their executor, shard-local DMU prefiltering, synthesis thread slabs.
* :class:`ServiceSpec` — deployment shape: direct in-process calls or the
  watermarked ingestion front-end, queue bounds, checkpoint cadence, and
  the HTTP ingress binding.
* :class:`SessionSpec` — the four layers plus the seed; the one argument
  of :func:`repro.api.session.create_session`.

``RetraSynConfig`` remains fully supported as a thin *compatibility
façade*: its ``__post_init__`` builds a :class:`SessionSpec` (so every
validation rule lives here, once), and :meth:`SessionSpec.from_config` /
:meth:`SessionSpec.to_config` convert losslessly in both directions.

Every spec field that is exposed on the command line carries its argparse
definition in the dataclass field metadata (``metadata["cli"]``), so the
``repro run`` and ``repro serve`` flag groups are *generated* from this
module and cannot drift from the config fields again.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional

from repro.exceptions import ConfigurationError
from repro.ldp.accountant import ACCOUNTANT_MODES
from repro.rng import RngLike

#: Closed vocabularies shared by validation and the generated CLI flags.
DIVISIONS = ("population", "budget")
ALLOCATORS = ("adaptive", "uniform", "sample", "random", "adaptive-user")
UPDATE_STRATEGIES = ("dmu", "all")
ENGINES = ("object", "vectorized")
ORACLE_MODES = ("fast", "exact", "exact-loop")
COMPILE_MODES = ("incremental", "full", "full-loop")
SHARD_EXECUTORS = ("serial", "process", "distributed")
SYNTHESIS_EXECUTORS = ("thread", "process")
TRANSPORTS = ("direct", "ingest")


#: Machine-readable registry of spec fields that deliberately carry no
#: ``metadata["cli"]`` entry, with the reason why.  The ``spec-flag-drift``
#: static-analysis rule (``repro lint``) fails on any *Spec field that is
#: neither CLI-exposed nor justified here, so adding a config knob forces
#: an explicit decision about its command-line surface.
NON_CLI_FIELDS = {
    "division": "repro run derives it from --method; repro serve adds its "
                "own --division flag outside the generated group",
    "alpha": "EMA smoothing constant pinned by the paper (Section III-E)",
    "kappa": "deviation threshold pinned by the paper (Section III-E)",
    "p_max": "sampling-rate ceiling pinned by the paper (Section III-E)",
    "track_privacy": "exposed as the inverted --no-audit convenience flag",
    "update_strategy": "encoded in the method name (AllUpdate_* variants)",
    "model_entering_quitting": "encoded in the method name (NoEQ_* variants)",
    "lam": "estimated from the dataset (average trajectory length)",
    "transport": "implied by the command: run=direct, serve=ingest",
    "http_host": "bound to the hand-written --host flag of repro serve",
    "http_port": "bound to the hand-written --http PORT flag of repro serve",
    "seed": "every command takes a shared top-level --seed flag",
}


def _cli(flag: str, help: str, *, type=None, choices=None, store_true=False):
    """Field-metadata entry describing one generated argparse flag."""
    return {
        "cli": {
            "flag": flag,
            "help": help,
            "type": type,
            "choices": choices,
            "store_true": store_true,
        }
    }


def _require_int(name: str, value) -> None:
    """Reject non-integers *before* any ``<`` comparison.

    Callers like ``ServeSettings`` carry ``Optional[int]`` mirrors of the
    service fields; without this, a leaked ``None`` would surface as a
    bare ``TypeError`` from the range check instead of a typed
    :class:`ConfigurationError`.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{name} must be an integer, got {value!r}"
        )


def _require_number(name: str, value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{name} must be a number, got {value!r}"
        )


@dataclass(frozen=True)
class PrivacySpec:
    """The privacy contract: what is protected, and how it is spent."""

    epsilon: float = field(
        default=1.0,
        metadata=_cli("--epsilon", "w-event privacy budget ε", type=float),
    )
    w: int = field(
        default=20,
        metadata=_cli("--w", "sliding-window length w (timestamps)", type=int),
    )
    division: str = "population"  # "population" (RetraSyn_p) | "budget" (RetraSyn_b)
    allocator: str = field(
        default="adaptive",
        metadata=_cli(
            "--allocator",
            "budget/population allocation strategy; 'adaptive-user' "
            "(budget division) scales spends by the participants' minimum "
            "remaining window budget from the privacy ledger",
            choices=ALLOCATORS,
        ),
    )
    alpha: float = 8.0
    kappa: int = 5
    p_max: float = 0.6
    accountant_mode: str = field(
        default="columnar",
        metadata=_cli(
            "--accountant-mode",
            "privacy-ledger engine: vectorized ring-buffer ledger or the "
            "per-uid dict reference",
            choices=ACCOUNTANT_MODES,
        ),
    )
    track_privacy: bool = True

    def __post_init__(self) -> None:
        if self.division not in DIVISIONS:
            raise ConfigurationError(
                f"division must be 'population' or 'budget', got {self.division!r}"
            )
        if self.allocator not in ALLOCATORS:
            raise ConfigurationError(f"unknown allocator {self.allocator!r}")
        if self.allocator == "random" and self.division != "population":
            raise ConfigurationError(
                "the 'random' strategy is user-driven and only defined for "
                "population division (paper Section III-E)"
            )
        if self.allocator == "adaptive-user" and self.division != "budget":
            raise ConfigurationError(
                "the 'adaptive-user' strategy scales per-timestamp budgets "
                "and is only defined for budget division"
            )
        if self.accountant_mode not in ACCOUNTANT_MODES:
            raise ConfigurationError(
                f"accountant_mode must be one of {ACCOUNTANT_MODES}, "
                f"got {self.accountant_mode!r}"
            )
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.w < 1:
            raise ConfigurationError(f"w must be >= 1, got {self.w}")
        if self.kappa < 1:
            raise ConfigurationError(f"kappa must be >= 1, got {self.kappa}")
        if not 0.0 < self.p_max <= 1.0:
            raise ConfigurationError(f"p_max must be in (0, 1], got {self.p_max}")


@dataclass(frozen=True)
class EngineSpec:
    """Which implementation runs each pipeline phase, plus model switches."""

    engine: str = field(
        default="object",
        metadata=_cli(
            "--engine",
            "synthesis engine (RetraSyn variants only)",
            choices=ENGINES,
        ),
    )
    oracle_mode: str = field(
        default="fast",
        metadata=_cli(
            "--oracle-mode",
            "OUE execution: binomial shortcut, batched literal protocol, or "
            "per-user reference loop",
            choices=ORACLE_MODES,
        ),
    )
    compile_mode: str = field(
        default="incremental",
        metadata=_cli(
            "--compile-mode",
            "vectorized-engine model compilation: dirty-row recompile, "
            "vectorized full rebuild, or the per-cell reference loop",
            choices=COMPILE_MODES,
        ),
    )
    update_strategy: str = "dmu"  # "dmu" | "all"  ("all" = AllUpdate variant)
    model_entering_quitting: bool = True  # False = NoEQ variant
    lam: Optional[float] = None  # λ of Eq. 8; None => dataset average length

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be 'object' or 'vectorized', got {self.engine!r}"
            )
        if self.oracle_mode not in ORACLE_MODES:
            raise ConfigurationError(
                f"oracle_mode must be 'fast', 'exact' or 'exact-loop', "
                f"got {self.oracle_mode!r}"
            )
        if self.compile_mode not in COMPILE_MODES:
            raise ConfigurationError(
                f"compile_mode must be 'incremental', 'full' or 'full-loop', "
                f"got {self.compile_mode!r}"
            )
        if self.update_strategy not in UPDATE_STRATEGIES:
            raise ConfigurationError(
                f"update_strategy must be 'dmu' or 'all', "
                f"got {self.update_strategy!r}"
            )
        if self.lam is not None and self.lam <= 0:
            raise ConfigurationError(f"lambda must be positive, got {self.lam}")


@dataclass(frozen=True)
class ShardingSpec:
    """Horizontal parallelism across collection and synthesis."""

    n_shards: int = field(
        default=1,
        metadata=_cli(
            "--shards",
            "collection shards; >1 enables the sharded engine "
            "(RetraSyn variants only)",
            type=int,
        ),
    )
    shard_executor: str = field(
        default="serial",
        metadata=_cli(
            "--shard-executor",
            "run shards in-process, one pipe worker process each, or as "
            "socket-framed worker services with shard-local privacy "
            "ledgers ('distributed')",
            choices=SHARD_EXECUTORS,
        ),
    )
    dmu_prefilter: bool = field(
        default=False,
        metadata=_cli(
            "--dmu-prefilter",
            "shard-local never-observed DMU candidate pruning",
            store_true=True,
        ),
    )
    synthesis_shards: int = field(
        default=1,
        metadata=_cli(
            "--synthesis-shards",
            "slabs advancing live synthetic streams in parallel "
            "(vectorized engine only)",
            type=int,
        ),
    )
    synthesis_executor: str = field(
        default="thread",
        metadata=_cli(
            "--synthesis-executor",
            "run synthesis slabs on pool threads or in worker processes "
            "(bit-identical output either way)",
            choices=SYNTHESIS_EXECUTORS,
        ),
    )
    shard_round_timeout: float = field(
        default=60.0,
        metadata=_cli(
            "--shard-round-timeout",
            "seconds a distributed shard round-trip may take before the "
            "worker is declared hung (0 = wait forever)",
            type=float,
        ),
    )
    round_batch: int = field(
        default=1,
        metadata=_cli(
            "--round-batch",
            "closed timestamps coalesced into one shard round "
            "(pipelined collection; 1 = per-timestamp protocol, "
            "bit-identical at every depth)",
            type=int,
        ),
    )

    def __post_init__(self) -> None:
        _require_number("shard_round_timeout", self.shard_round_timeout)
        if self.n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.round_batch < 1:
            raise ConfigurationError(
                f"round_batch must be >= 1, got {self.round_batch}"
            )
        if self.shard_executor not in SHARD_EXECUTORS:
            raise ConfigurationError(
                f"shard_executor must be one of {SHARD_EXECUTORS}, "
                f"got {self.shard_executor!r}"
            )
        if self.synthesis_shards < 1:
            raise ConfigurationError(
                f"synthesis_shards must be >= 1, got {self.synthesis_shards}"
            )
        if self.synthesis_executor not in SYNTHESIS_EXECUTORS:
            raise ConfigurationError(
                f"synthesis_executor must be one of {SYNTHESIS_EXECUTORS}, "
                f"got {self.synthesis_executor!r}"
            )
        if self.shard_round_timeout < 0:
            raise ConfigurationError(
                f"shard_round_timeout must be >= 0, "
                f"got {self.shard_round_timeout}"
            )


@dataclass(frozen=True)
class ServiceSpec:
    """Deployment shape of the session (ignored by the batch pipeline)."""

    transport: str = "direct"  # "direct" | "ingest" (watermarked assembler)
    queue_size: int = field(
        default=10_000,
        metadata=_cli(
            "--queue-size",
            "ingress queue bound (backpressure threshold)",
            type=int,
        ),
    )
    max_lateness: int = field(
        default=0,
        metadata=_cli(
            "--lateness",
            "watermark slack: timestamps a report may trail",
            type=int,
        ),
    )
    checkpoint_path: Optional[str] = field(
        default=None,
        metadata=_cli(
            "--checkpoint", "checkpoint file to write (and resume from)"
        ),
    )
    checkpoint_every: int = field(
        default=0,
        metadata=_cli(
            "--checkpoint-every",
            "timestamps between checkpoints (0 = only at end)",
            type=int,
        ),
    )
    checkpoint_keep: int = field(
        default=1,
        metadata=_cli(
            "--checkpoint-keep",
            "rotated checkpoint generations to retain; >1 keeps timestamped "
            "files and resume falls back past a torn newest one",
            type=int,
        ),
    )
    drain_deadline: float = field(
        default=30.0,
        metadata=_cli(
            "--drain-deadline",
            "seconds SIGTERM/SIGINT drain may spend flushing in-flight "
            "rounds and the final checkpoint (0 = no deadline)",
            type=float,
        ),
    )
    ingest_consumers: int = field(
        default=1,
        metadata=_cli(
            "--ingest-consumers",
            "assembler partitions fed concurrently; >1 hash-partitions "
            "buffering by user id (output stays canonical)",
            type=int,
        ),
    )
    http_host: str = "127.0.0.1"
    http_port: int = 0  # 0 = bind an ephemeral port

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        for name in (
            "queue_size", "max_lateness", "checkpoint_every",
            "checkpoint_keep", "ingest_consumers", "http_port",
        ):
            _require_int(name, getattr(self, name))
        _require_number("drain_deadline", self.drain_deadline)
        if self.queue_size < 1:
            raise ConfigurationError(
                f"queue_size must be >= 1, got {self.queue_size}"
            )
        if self.max_lateness < 0:
            raise ConfigurationError(
                f"max_lateness must be >= 0, got {self.max_lateness}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_keep < 1:
            raise ConfigurationError(
                f"checkpoint_keep must be >= 1, got {self.checkpoint_keep}"
            )
        if self.drain_deadline < 0:
            raise ConfigurationError(
                f"drain_deadline must be >= 0, got {self.drain_deadline}"
            )
        if self.ingest_consumers < 1:
            raise ConfigurationError(
                f"ingest_consumers must be >= 1, got {self.ingest_consumers}"
            )
        if not 0 <= self.http_port <= 65535:
            raise ConfigurationError(
                f"http_port must be in [0, 65535], got {self.http_port}"
            )


#: Flat RetraSynConfig field name -> (layer attribute, spec class).
_FLAT_LAYOUT = {
    **{f.name: ("privacy", PrivacySpec) for f in fields(PrivacySpec)},
    **{f.name: ("engine", EngineSpec) for f in fields(EngineSpec)},
    **{f.name: ("sharding", ShardingSpec) for f in fields(ShardingSpec)},
}
_SERVICE_FIELDS = {f.name for f in fields(ServiceSpec)}


@dataclass(frozen=True)
class SessionSpec:
    """A complete, validated description of one curator session."""

    privacy: PrivacySpec = field(default_factory=PrivacySpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    sharding: ShardingSpec = field(default_factory=ShardingSpec)
    service: ServiceSpec = field(default_factory=ServiceSpec)
    seed: RngLike = None

    def __post_init__(self) -> None:
        for name, cls in (
            ("privacy", PrivacySpec),
            ("engine", EngineSpec),
            ("sharding", ShardingSpec),
            ("service", ServiceSpec),
        ):
            if not isinstance(getattr(self, name), cls):
                raise ConfigurationError(
                    f"SessionSpec.{name} must be a {cls.__name__}, "
                    f"got {type(getattr(self, name)).__name__}"
                )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_flat(cls, **kwargs) -> "SessionSpec":
        """Build a spec from flat ``RetraSynConfig``-style keyword arguments.

        Service-layer fields (``transport``, ``queue_size``, …) are accepted
        alongside the engine fields, so one kwargs dict can describe a whole
        deployment.  Unknown names raise :class:`ConfigurationError`.
        """
        seed = kwargs.pop("seed", None)
        layers: dict[str, dict] = {
            "privacy": {}, "engine": {}, "sharding": {}, "service": {}
        }
        for name, value in kwargs.items():
            if name in _FLAT_LAYOUT:
                layer, _ = _FLAT_LAYOUT[name]
                layers[layer][name] = value
            elif name in _SERVICE_FIELDS:
                layers["service"][name] = value
            else:
                raise ConfigurationError(f"unknown session field {name!r}")
        return cls(
            privacy=PrivacySpec(**layers["privacy"]),
            engine=EngineSpec(**layers["engine"]),
            sharding=ShardingSpec(**layers["sharding"]),
            service=ServiceSpec(**layers["service"]),
            seed=seed,
        )

    @classmethod
    def from_config(cls, config, service: Optional[ServiceSpec] = None) -> "SessionSpec":
        """Lift a flat :class:`~repro.core.retrasyn.RetraSynConfig`.

        ``config`` may be any object exposing the flat field names
        (dataclass instances and plain namespaces both work); missing
        fields keep their spec defaults, so older pickled configs lift
        cleanly too.
        """
        flat = {}
        for name in _FLAT_LAYOUT:
            if hasattr(config, name):
                flat[name] = getattr(config, name)
        spec = cls.from_flat(seed=getattr(config, "seed", None), **flat)
        if service is not None:
            spec = dataclasses.replace(spec, service=service)
        return spec

    def to_config(self):
        """Flatten back to the :class:`RetraSynConfig` compatibility façade."""
        from repro.core.retrasyn import RetraSynConfig

        return RetraSynConfig(**self.flat())

    def flat(self) -> dict:
        """The flat (``RetraSynConfig``-shaped) field dict, service excluded."""
        out = {}
        for name, (layer, _) in _FLAT_LAYOUT.items():
            out[name] = getattr(getattr(self, layer), name)
        out["seed"] = self.seed
        return out

    def replace(self, **kwargs) -> "SessionSpec":
        """A copy with flat or layer fields replaced (validated again)."""
        layer_names = {"privacy", "engine", "sharding", "service", "seed"}
        if set(kwargs) <= layer_names:
            return dataclasses.replace(self, **kwargs)
        merged = self.flat()
        service = {
            name: getattr(self.service, name) for name in _SERVICE_FIELDS
        }
        for name, value in kwargs.items():
            if name in _FLAT_LAYOUT or name == "seed":
                merged[name] = value
            elif name in _SERVICE_FIELDS:
                service[name] = value
            elif name in layer_names:
                raise ConfigurationError(
                    "cannot mix layer objects and flat fields in replace()"
                )
            else:
                raise ConfigurationError(f"unknown session field {name!r}")
        return SessionSpec.from_flat(**merged, **service)

    @property
    def label(self) -> str:
        """Human-readable method name in the paper's notation."""
        suffix = "p" if self.privacy.division == "population" else "b"
        if self.engine.update_strategy == "all":
            return f"AllUpdate_{suffix}"
        if not self.engine.model_entering_quitting:
            return f"NoEQ_{suffix}"
        return f"RetraSyn_{suffix}"


def iter_cli_fields(
    spec_classes=(PrivacySpec, EngineSpec, ShardingSpec),
) -> Iterator[tuple[type, dataclasses.Field]]:
    """Yield ``(spec_class, field)`` for every CLI-exposed spec field.

    The shared flag-group builder in :mod:`repro.cli` iterates this to
    generate identical ``repro run`` / ``repro serve`` flag blocks.
    """
    for cls in spec_classes:
        for f in fields(cls):
            if "cli" in f.metadata:
                yield cls, f


def cli_field_names(spec_cls) -> tuple[str, ...]:
    """Names of the CLI-exposed fields of one spec class, in field order.

    Consumers that must cover *exactly* the command-line surface of a
    spec — e.g. the flat :class:`repro.serve.ServeSettings` mirrors of
    :class:`ServiceSpec` — derive their field lists from this registry
    instead of maintaining a parallel tuple that can drift.
    """
    return tuple(f.name for f in fields(spec_cls) if "cli" in f.metadata)
