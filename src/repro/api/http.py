"""Asyncio HTTP ingress: a :class:`CuratorSession` served over the wire.

``repro serve --http PORT`` binds this server in front of a session
created by :func:`~repro.api.session.create_session`; remote clients
(:class:`~repro.api.client.Client`) then drive the same
``submit_batch / advance / snapshot / result`` protocol that in-process
callers use, speaking the versioned wire schema of
:mod:`repro.api.schema`.  Because the schema round-trips report batches
losslessly and the server processes them in submission order, a remote
replay produces *bit-identical* synthetic streams to an in-process
session with the same spec and seed (pinned by
``tests/api/test_http_ingress.py``).

The server is deliberately dependency-free: a small HTTP/1.1 handler on
``asyncio.start_server`` (persistent connections, bounded header and
body sizes), because the container ships no web framework and the
protocol needs only these routes:

==========================  ==========================================
``GET  /v1/hello``          Version negotiation + grid geometry.
``POST /v1/batch``          Submit one timestamp's reports; advances.
``GET  /v1/snapshot``       Live synthetic cells.
``GET  /v1/stats``          Monitoring counters.
``POST /v1/checkpoint``     Write the configured checkpoint.
``POST /v1/close``          End of stream: flush + final checkpoint.
``GET  /v1/result``         The synthetic database, columnar.
``POST /v1/shutdown``       Close the session and stop the server.
``GET  /metrics``           Prometheus text-format metrics scrape.
``GET  /healthz``           Liveness probe (200 while the loop runs).
``GET  /readyz``            Readiness probe (503 once draining).
==========================  ==========================================

Session calls are serialized behind an :class:`asyncio.Lock`, so
concurrent clients cannot interleave a curator round.

Graceful drain: when signal handling is enabled (the ``repro serve
--http`` path), SIGTERM/SIGINT flips the server into draining mode —
``/readyz`` answers 503, new ``/v1/batch`` submissions are refused with
503, the in-flight round finishes under the session lock, the session
closes (assembler flush + final checkpoint) and the server stops — all
bounded by ``ServiceSpec.drain_deadline`` seconds.

Transport fast paths (schema v2):

* connections are **keep-alive** by default (HTTP/1.1 semantics): a
  client replaying a stream reuses one socket for the whole run instead
  of a connect/close cycle per timestamp;
* ``POST /v1/batch`` accepts either a JSON v1 envelope or one-or-more
  concatenated **binary frames** (sniffed by the ``RSF2`` magic).  A
  multi-frame body is the client-side pipelining path: every batch is
  submitted in frame order under one session-lock acquisition and one
  ``advance()`` sweep, and the ack reports how many batches landed;
* ``GET /v1/snapshot?v=2`` / ``GET /v1/result?v=2`` answer with a binary
  frame instead of base64 JSON (``v`` defaults to 1, the reference
  encoding, so v1-only clients never see a frame).

Responses pick their encoding by content: messages carrying raw array
columns go out as frames (``application/x-retrasyn-frame``), everything
else — hello, acks, stats, errors — stays JSON, so the bootstrap and
failure paths are always readable to any peer.
"""

from __future__ import annotations

import asyncio
import signal

import numpy as np

from repro.api import schema
from repro.api.schema import SchemaError
from repro.exceptions import ReproError
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE

#: Bounds on what a peer may send (headers / body, bytes).
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 256 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Plain:
    """A pre-encoded (non-schema) response body: probes and /metrics."""

    __slots__ = ("payload", "ctype")

    def __init__(self, payload: bytes, ctype: str = "text/plain; charset=utf-8"):
        self.payload = payload
        self.ctype = ctype


class HttpIngress:
    """One session behind an HTTP front door.

    Parameters
    ----------
    session:
        Any :class:`~repro.api.session.CuratorSession`.  The ingest
        transport is the natural fit (out-of-order tolerance), but the
        direct one works identically for in-order replays.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, exposed as
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = 0,
        handle_signals: bool = False,
    ) -> None:
        self.session = session
        self.host = host
        self.port = int(port)
        self._server: asyncio.AbstractServer | None = None
        self._lock = asyncio.Lock()
        self._shutdown = asyncio.Event()
        self._ready = False
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._handle_signals = bool(handle_signals)
        self.drain_deadline = float(
            getattr(session.spec.service, "drain_deadline", 30.0)
        )
        # Transport counters, mirrored into the session's metrics registry
        # by start(): report-batch messages in, frame-encoded responses
        # out, and raw body bytes both ways.
        self.frames_received = 0
        self.frames_sent = 0
        self.bytes_received = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        # limit bounds readuntil() for the header; the body is read with
        # readexactly(), which the limit does not apply to.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._handle_signals:
            self.install_signal_handlers()
        self._register_metrics()
        self._ready = True

    def _register_metrics(self) -> None:
        """Expose the ingress transport counters on the session registry.

        The registry is create-or-get, so re-binding after a restart just
        repoints the callbacks at the live ingress.
        """
        registry = getattr(self.session, "metrics", None)
        if registry is None:
            return
        frames = registry.counter(
            "retrasyn_ingress_frames_total",
            "Report-batch messages received and frame responses sent "
            "by the HTTP ingress.",
            labelnames=("direction",),
        )
        frames.labels("received").set_function(
            lambda: int(self.frames_received)
        )
        frames.labels("sent").set_function(lambda: int(self.frames_sent))
        nbytes = registry.counter(
            "retrasyn_ingress_bytes_total",
            "Request body bytes read and response bytes written by the "
            "HTTP ingress.",
            labelnames=("direction",),
        )
        nbytes.labels("received").set_function(
            lambda: int(self.bytes_received)
        )
        nbytes.labels("sent").set_function(lambda: int(self.bytes_sent))

    def install_signal_handlers(self) -> bool:
        """Route SIGTERM/SIGINT into a graceful drain.

        Only possible on the main thread of a unix event loop; returns
        False (and leaves default dispositions) anywhere else, so tests
        running ingresses on background threads are unaffected.
        """
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
            loop.add_signal_handler(signal.SIGINT, self.begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            return False
        return True

    def begin_drain(self) -> None:
        """Start (idempotently) the drain task from a signal handler."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain()
            )

    async def drain(self) -> None:
        """Stop accepting, finish in-flight rounds, flush, checkpoint, stop.

        Bounded by ``drain_deadline`` seconds (0 = no bound); on timeout
        the server still stops — a stuck round must not outlive the
        supervisor's own kill timeout.
        """
        if self._draining:
            return
        self._draining = True  # /readyz -> 503, new batches refused
        try:
            if self.drain_deadline > 0:
                await asyncio.wait_for(
                    self._finish_session(), timeout=self.drain_deadline
                )
            else:
                await self._finish_session()
        except asyncio.TimeoutError:  # pragma: no cover - deadline escape
            pass
        self._shutdown.set()

    async def _finish_session(self) -> None:
        async with self._lock:  # waits for the in-flight round
            self.session.close()  # flush partitions + final checkpoint

    async def serve_until_shutdown(self) -> None:
        """Block until a client posts ``/v1/shutdown``, then stop."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()

    async def aclose(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------ #
    # http plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                keep_alive = False
                try:
                    request = await self._read_request(reader)
                    if request is None:
                        return
                    method, path, body, keep_alive = request
                    self.bytes_received += len(body)
                    status, msg = await self._route(method, path, body)
                except SchemaError as exc:
                    status, msg = 400, schema.error_message(exc)
                except ReproError as exc:
                    status, msg = 400, schema.error_message(exc)
                except Exception as exc:  # noqa: BLE001 - envelope reports it
                    status, msg = 500, schema.error_message(exc)
                # Errors and shutdown close the connection: a peer whose
                # request failed mid-pipeline must not keep streaming into
                # a session whose round state it has lost track of.
                keep_alive = (
                    keep_alive and status < 400 and not self._shutdown.is_set()
                )
                payload, ctype = self._encode_response(msg)
                self.bytes_sent += len(payload)
                if ctype == schema.CONTENT_TYPE_FRAME:
                    self.frames_sent += 1
                head = (
                    f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}"
                    "\r\n\r\n"
                ).encode("ascii")
                writer.write(head + payload)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, OSError):
            pass  # peer went away mid-response; nothing to report to
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _encode_response(msg):
        """Frame when the message carries raw arrays, JSON otherwise.

        Probe and metrics handlers return pre-encoded :class:`_Plain`
        bodies, which pass through untouched.
        """
        if isinstance(msg, _Plain):
            return msg.payload, msg.ctype
        if any(isinstance(v, np.ndarray) for v in msg.values()):
            return schema.dump_frame(msg), schema.CONTENT_TYPE_FRAME
        return schema.dumps(msg), schema.CONTENT_TYPE_JSON

    @staticmethod
    async def _read_request(reader):
        try:
            header = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            # Connection closed before a full request arrived (port scans,
            # TCP health checks, keep-alive peers hanging up): not an
            # error, just nothing to answer.
            return None
        except asyncio.LimitOverrunError:
            raise SchemaError("request header too large") from None
        lines = header.decode("latin-1").split("\r\n")
        try:
            method, target, _proto = lines[0].split(" ", 2)
        except ValueError as exc:
            raise SchemaError(f"malformed request line {lines[0]!r}") from exc
        length = 0
        keep_alive = True  # HTTP/1.1 default
        for line in lines[1:]:
            name, _, value = line.partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise SchemaError(
                        f"unparseable Content-Length {value.strip()!r}"
                    ) from None
            elif name == "connection":
                keep_alive = value.strip().lower() != "close"
        if not 0 <= length <= _MAX_BODY_BYTES:
            raise SchemaError(f"request body of {length} bytes exceeds the bound")
        try:
            body = await reader.readexactly(length) if length else b""
        except asyncio.IncompleteReadError:
            return None  # peer closed mid-body; nothing to answer
        return method.upper(), target, body, keep_alive

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _route(self, method: str, target: str, body: bytes):
        path, _, query = target.partition("?")
        handlers = {
            ("GET", "/v1/hello"): self._hello,
            ("POST", "/v1/batch"): self._batch,
            ("GET", "/v1/snapshot"): self._snapshot,
            ("GET", "/v1/stats"): self._stats,
            ("POST", "/v1/checkpoint"): self._checkpoint,
            ("POST", "/v1/close"): self._close,
            ("GET", "/v1/result"): self._result,
            ("POST", "/v1/shutdown"): self._shutdown_route,
            ("GET", "/metrics"): self._metrics,
            ("GET", "/healthz"): self._healthz,
            ("GET", "/readyz"): self._readyz,
        }
        handler = handlers.get((method, path))
        if handler is None:
            known_paths = {p for _, p in handlers}
            if path in known_paths:
                return 405, schema.error_message(
                    SchemaError(f"method {method} not allowed for {path}")
                )
            return 404, schema.error_message(SchemaError(f"unknown route {path}"))
        return await handler(query, body)

    async def _hello(self, query: str, body: bytes):
        versions = schema.SUPPORTED_VERSIONS
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name == "versions" and value:
                versions = [v for v in value.split(",") if v]
        negotiated = schema.negotiate(versions)
        curator = self.session.curator
        msg = schema.hello_message(
            curator.grid,
            include_eq=curator.space.include_eq,
            label=curator.config.label,
            lam=curator.lam,
        )
        msg["schema"] = negotiated
        return 200, msg

    @staticmethod
    def _query_version(query: str) -> int:
        """Response schema version from the ``v`` query parameter.

        Defaults to 1 — the JSON reference encoding — so peers that never
        negotiated see exactly the wire format v1 defined.
        """
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name == "v" and value:
                try:
                    version = int(value)
                except ValueError:
                    raise SchemaError(
                        f"unparseable schema version {value!r}"
                    ) from None
                if version not in schema.SUPPORTED_VERSIONS:
                    raise SchemaError(f"unsupported schema version {version}")
                return version
        return 1

    async def _metrics(self, query: str, body: bytes):
        registry = getattr(self.session, "metrics", None)
        if registry is None:
            return 404, schema.error_message(
                SchemaError("this session exposes no metrics registry")
            )
        # Under the lock: callbacks read live engine state (and, for the
        # distributed executor, round-trip to the shard workers), which
        # must not interleave with a curator round.
        async with self._lock:
            text = registry.render()
        return 200, _Plain(text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)

    async def _healthz(self, query: str, body: bytes):
        # Liveness: the event loop answered. True even while draining —
        # a draining server is shutting down cleanly, not wedged.
        return 200, _Plain(b"ok\n")

    async def _readyz(self, query: str, body: bytes):
        if self._ready and not self._draining and not self._shutdown.is_set():
            return 200, _Plain(b"ready\n")
        return 503, _Plain(b"draining\n" if self._draining else b"not ready\n")

    async def _batch(self, query: str, body: bytes):
        if self._draining:
            return 503, schema.error_message(
                ReproError("server is draining; not accepting new batches")
            )
        if schema.is_frame(body):
            # The pipelined fast path: a body may concatenate several
            # frames; all are submitted under ONE lock acquisition and one
            # advance() sweep, in frame order (order is what keeps remote
            # replays bit-identical to in-process sessions).
            msgs = list(schema.iter_frames(body, expect="report-batch"))
        else:
            msgs = [schema.loads(body, expect="report-batch")]
        if not msgs:
            raise SchemaError("empty batch body")
        self.frames_received += len(msgs)
        parsed = [schema.parse_report_batch(m) for m in msgs]
        async with self._lock:
            for t, batch, entered, quitted, n_active in parsed:
                self.session.submit_batch(
                    t, batch,
                    newly_entered=entered, quitted=quitted,
                    n_real_active=n_active,
                )
            results = self.session.advance()
        return 200, schema.message(
            "ack",
            t=parsed[-1][0],
            n=sum(len(p[1]) for p in parsed),
            n_batches=len(parsed),
            n_rounds_processed=len(results),
        )

    async def _snapshot(self, query: str, body: bytes):
        version = self._query_version(query)
        async with self._lock:
            cells = self.session.snapshot()
        return 200, schema.snapshot_message(cells, version=version)

    async def _stats(self, query: str, body: bytes):
        async with self._lock:
            stats = self.session.stats()
        return 200, schema.stats_message(stats)

    async def _checkpoint(self, query: str, body: bytes):
        # Only the server-configured path is writable: remote peers must
        # not choose filesystem locations.
        async with self._lock:
            self.session.checkpoint()
        return 200, schema.message(
            "checkpoint", path=self.session.spec.service.checkpoint_path
        )

    async def _close(self, query: str, body: bytes):
        async with self._lock:
            self.session.close()
        return 200, schema.message("ack", t=-1, n=0, n_rounds_processed=0)

    async def _result(self, query: str, body: bytes):
        from repro.core.trajectory_store import StoreTrajectories

        version = self._query_version(query)
        async with self._lock:
            run = self.session.result()
        synthetic = run.synthetic
        trajectories = synthetic.trajectories
        if isinstance(trajectories, StoreTrajectories):
            # Store-backed datasets ship straight from the columnar
            # arrays — no CellTrajectory is materialised for the wire.
            store, rows = trajectories.store, trajectories.rows
            births = store.births_of(rows)
            lengths = store.lengths_of(rows)
            flat = store.flat_cells(rows)
            user_ids = rows
        else:
            births = np.asarray(
                [t.start_time for t in trajectories], dtype=np.int64
            )
            lengths = np.asarray([len(t) for t in trajectories], dtype=np.int64)
            flat = (
                np.concatenate(
                    [np.asarray(t.cells, dtype=np.int64) for t in trajectories]
                )
                if len(trajectories)
                else np.zeros(0, dtype=np.int64)
            )
            user_ids = np.asarray(
                [t.user_id for t in trajectories], dtype=np.int64
            )
        return 200, schema.result_message(
            births, lengths, flat, synthetic.n_timestamps, synthetic.name,
            user_ids, version=version,
        )

    async def _shutdown_route(self, query: str, body: bytes):
        async with self._lock:
            self.session.close()
        self._shutdown.set()
        return 200, schema.message("ack", t=-1, n=0, n_rounds_processed=0)


def serve_http(
    session,
    host: str = "127.0.0.1",
    port: int = 0,
    on_ready=None,
    handle_signals: bool = True,
):
    """Run an ingress for ``session`` until a client posts ``/v1/shutdown``.

    ``on_ready(ingress)`` fires once the socket is bound — the CLI prints
    the listening address from it, and tests grab the ephemeral port.
    With ``handle_signals`` (the default, effective only on a main-thread
    unix loop) SIGTERM/SIGINT drain gracefully instead of killing the
    process: in-flight rounds finish, the assembler flushes and the final
    checkpoint is written before the server stops.
    Returns the :class:`HttpIngress` (its session holds the final state).
    """

    async def _run() -> HttpIngress:
        ingress = HttpIngress(
            session, host=host, port=port, handle_signals=handle_signals
        )
        await ingress.start()
        if on_ready is not None:
            on_ready(ingress)
        await ingress.serve_until_shutdown()
        return ingress

    return asyncio.run(_run())
