"""Remote curator client: the wire twin of an in-process session.

:class:`Client` speaks the versioned schema of :mod:`repro.api.schema`
over the HTTP ingress (:mod:`repro.api.http`), exposing the same verbs a
local :class:`~repro.api.session.CuratorSession` has — ``submit_batch``,
``snapshot``, ``stats``, ``checkpoint``, ``close`` and ``result`` — so
moving a workload across the network is a one-line change::

    client = Client("127.0.0.1", 8731)
    hello = client.hello()                  # negotiate + grid geometry
    for t in range(T):
        client.submit_batch(t, view.batch_at(t),
                            newly_entered=view.newly_entered_at(t),
                            quitted=view.quitted_at(t),
                            n_real_active=view.n_active_at(t))
    client.close()
    synthetic = client.result()             # a StreamDataset, bit-identical
                                            # to the in-process run

Only the Python standard library is used (``http.client``).  The client
holds ONE persistent keep-alive connection and reconnects transparently
when the server (or an idle timeout) drops it; after :meth:`hello`
negotiates schema v2, report batches travel as binary frames and
:meth:`submit_batches` pipelines several timestamps into a single
request body (the frames concatenate because each is length-prefixed).
Against a v1-only server everything silently stays base64 JSON, one
batch per request.
"""

from __future__ import annotations

import http.client
from typing import Optional, Sequence

import numpy as np

from repro.api import schema
from repro.exceptions import ResponseLostError

#: Exceptions that mean "the TCP peer went away mid-exchange".
_DISCONNECTS = (
    http.client.RemoteDisconnected,
    BrokenPipeError,
    ConnectionResetError,
)


#: Default request-body budget for :meth:`Client.submit_batches` (bytes).
#: Chosen well under the server's 256 MiB body bound so a pipelined run
#: never trips it, while still amortising one round-trip over many frames.
DEFAULT_CHUNK_BYTES = 8 * 1024 * 1024


class Client:
    """Synchronous client for one curator session behind an HTTP ingress.

    ``chunk_bytes`` bounds the body of a pipelined :meth:`submit_batches`
    request: frames are packed greedily up to the budget and flushed as
    multiple POSTs when the pipeline exceeds it (a single frame larger
    than the budget still travels alone — the server enforces its own
    body bound).  ``chunk_bytes=0`` disables chunking.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.chunk_bytes = int(chunk_bytes)
        if self.chunk_bytes < 0:
            raise ValueError(
                f"chunk_bytes must be >= 0, got {self.chunk_bytes}"
            )
        self.schema_version: int = schema.SCHEMA_VERSION
        self._hello: Optional[dict] = None
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._conn = None

    def _send(self, method: str, path: str, body: bytes) -> bytes:
        """One request over the persistent connection, at most once applied.

        A dead keep-alive socket (server restarted, idle drop) surfaces as
        ``RemoteDisconnected`` / a broken pipe while *writing* the request
        — the server never saw it, so one reconnect-and-retry is always
        safe.  A disconnect after the request was written is ambiguous:
        the server may have applied it and died before answering.  Only
        idempotent ``GET``\\ s are retried past that point; a mutating
        request raises :class:`~repro.exceptions.ResponseLostError`
        instead of being blindly resent (a resent ``POST /v1/batch``
        would double-apply every report in it).
        """
        ctype = (
            schema.CONTENT_TYPE_FRAME
            if schema.is_frame(body)
            else schema.CONTENT_TYPE_JSON
        )
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(
                    method, path, body=body, headers={"Content-Type": ctype}
                )
            except _DISCONNECTS:
                # Failed before (or while) writing: nothing was applied.
                self._drop_connection()
                if attempt:
                    raise
                continue
            except (http.client.HTTPException, ConnectionError, OSError):
                self._drop_connection()
                raise
            try:
                response = self._conn.getresponse()
                payload = response.read()
            except _DISCONNECTS as exc:
                # The request reached the wire but the response was lost.
                self._drop_connection()
                if method == "GET":
                    if attempt:
                        raise
                    continue
                raise ResponseLostError(
                    f"connection lost awaiting the response to "
                    f"{method} {path}; the server may or may not have "
                    f"applied it — reconcile via GET /v1/stats before "
                    f"resending"
                ) from exc
            except (http.client.HTTPException, ConnectionError, OSError):
                self._drop_connection()
                raise
            if response.will_close:
                self._drop_connection()
            return payload
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(self, method: str, path: str, msg: Optional[dict] = None,
                 expect: Optional[str] = None) -> dict:
        body = schema.dumps_any(msg) if msg is not None else b""
        payload = self._send(method, path, body)
        # loads_any() raises SchemaError for error envelopes whenever a
        # type is expected, so callers never see an "error" message object.
        return schema.loads_any(payload, expect=expect)

    # ------------------------------------------------------------------ #
    # protocol verbs
    # ------------------------------------------------------------------ #
    def hello(self) -> dict:
        """Negotiate the schema version and fetch the server identity."""
        versions = ",".join(str(v) for v in schema.SUPPORTED_VERSIONS)
        msg = self._request(
            "GET", f"/v1/hello?versions={versions}", expect="hello"
        )
        self.schema_version = int(msg["schema"])
        self._hello = msg
        return msg

    def grid(self):
        """The server's discretisation grid (from the hello handshake)."""
        from repro.geo.grid import Grid
        from repro.geo.point import BoundingBox

        info = (self._hello or self.hello())["grid"]
        bx = info["bbox"]
        return Grid(BoundingBox(bx[0], bx[1], bx[2], bx[3]), int(info["k"]))

    def submit_batch(
        self, t: int, batch, newly_entered=(), quitted=(),
        n_real_active: int = 0,
    ) -> dict:
        """Submit one timestamp's candidate reports; returns the ack."""
        msg = schema.report_batch_message(
            t, batch, newly_entered, quitted, n_real_active,
            version=self.schema_version,
        )
        return self._request("POST", "/v1/batch", msg, expect="ack")

    def submit_batches(self, items: Sequence[tuple]) -> dict:
        """Pipeline several timestamps' batches in one request.

        ``items`` holds ``(t, batch, newly_entered, quitted,
        n_real_active)`` tuples in submission order.  On a v2 connection
        the frames concatenate into POST bodies of at most
        ``chunk_bytes`` bytes each (so an arbitrarily long pipeline never
        exceeds the server's request-body bound); each body is submitted
        in order under a single session-lock acquisition.  On a v1
        connection this degrades to one request per batch.  Returns the
        final ack either way.
        """
        if not items:
            raise ValueError("submit_batches needs at least one batch")
        if self.schema_version not in schema.FRAME_VERSIONS:
            ack = None
            for t, batch, entered, quitted, n_active in items:
                ack = self.submit_batch(
                    t, batch, entered, quitted, n_real_active=n_active
                )
            return ack
        budget = self.chunk_bytes
        ack_payload = None
        chunk: list[bytes] = []
        chunk_len = 0
        for t, batch, entered, quitted, n_active in items:
            frame = schema.dump_frame(
                schema.report_batch_message(
                    t, batch, entered, quitted, n_active,
                    version=self.schema_version,
                )
            )
            if chunk and budget and chunk_len + len(frame) > budget:
                ack_payload = self._send(
                    "POST", "/v1/batch", b"".join(chunk)
                )
                chunk, chunk_len = [], 0
            chunk.append(frame)
            chunk_len += len(frame)
        if chunk:
            ack_payload = self._send("POST", "/v1/batch", b"".join(chunk))
        return schema.loads_any(ack_payload, expect="ack")

    def snapshot(self) -> np.ndarray:
        """Current cells of the server's live synthetic streams."""
        msg = self._request(
            "GET", f"/v1/snapshot?v={self.schema_version}", expect="snapshot"
        )
        return schema.parse_snapshot(msg)

    def stats(self) -> dict:
        """The server session's monitoring counters."""
        return self._request("GET", "/v1/stats", expect="stats")["stats"]

    def checkpoint(self) -> Optional[str]:
        """Ask the server to write its configured checkpoint; returns the path."""
        msg = self._request("POST", "/v1/checkpoint", expect="checkpoint")
        return msg.get("path")

    def close(self) -> None:
        """End of stream: the server flushes and finalises the session."""
        self._request("POST", "/v1/close", expect="ack")

    def result(self, name: Optional[str] = None):
        """Fetch the synthetic database as a :class:`StreamDataset`."""
        from repro.geo.trajectory import CellTrajectory
        from repro.stream.stream import StreamDataset

        msg = self._request(
            "GET", f"/v1/result?v={self.schema_version}", expect="result"
        )
        births, lengths, flat, n_timestamps, remote_name, user_ids = (
            schema.parse_result(msg)
        )
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        trajectories = [
            CellTrajectory(
                int(births[i]),
                flat[offsets[i]:offsets[i + 1]].tolist(),
                user_id=int(user_ids[i]),
            )
            for i in range(lengths.size)
        ]
        return StreamDataset(
            self.grid(),
            trajectories,
            n_timestamps=n_timestamps,
            name=name or remote_name,
        )

    def shutdown_server(self) -> None:
        """Close the remote session and stop the ingress loop."""
        self._request("POST", "/v1/shutdown", expect="ack")
        self._drop_connection()

    def disconnect(self) -> None:
        """Drop the persistent connection (the session stays alive)."""
        self._drop_connection()
