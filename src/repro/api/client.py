"""Remote curator client: the wire twin of an in-process session.

:class:`Client` speaks the versioned schema of :mod:`repro.api.schema`
over the HTTP ingress (:mod:`repro.api.http`), exposing the same verbs a
local :class:`~repro.api.session.CuratorSession` has — ``submit_batch``,
``snapshot``, ``stats``, ``checkpoint``, ``close`` and ``result`` — so
moving a workload across the network is a one-line change::

    client = Client("127.0.0.1", 8731)
    hello = client.hello()                  # negotiate + grid geometry
    for t in range(T):
        client.submit_batch(t, view.batch_at(t),
                            newly_entered=view.newly_entered_at(t),
                            quitted=view.quitted_at(t),
                            n_real_active=view.n_active_at(t))
    client.close()
    synthetic = client.result()             # a StreamDataset, bit-identical
                                            # to the in-process run

Only the Python standard library is used (``http.client``); each request
opens a fresh connection because the server closes after responding.
"""

from __future__ import annotations

import http.client
from typing import Optional

import numpy as np

from repro.api import schema


class Client:
    """Synchronous client for one curator session behind an HTTP ingress."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.schema_version: int = schema.SCHEMA_VERSION
        self._hello: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, msg: Optional[dict] = None,
                 expect: Optional[str] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = schema.dumps(msg) if msg is not None else b""
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = response.read()
        finally:
            conn.close()
        # loads() raises SchemaError for error envelopes whenever a type is
        # expected, so callers never see an "error" message object.
        return schema.loads(payload, expect=expect)

    # ------------------------------------------------------------------ #
    # protocol verbs
    # ------------------------------------------------------------------ #
    def hello(self) -> dict:
        """Negotiate the schema version and fetch the server identity."""
        versions = ",".join(str(v) for v in schema.SUPPORTED_VERSIONS)
        msg = self._request(
            "GET", f"/v1/hello?versions={versions}", expect="hello"
        )
        self.schema_version = int(msg["schema"])
        self._hello = msg
        return msg

    def grid(self):
        """The server's discretisation grid (from the hello handshake)."""
        from repro.geo.grid import Grid
        from repro.geo.point import BoundingBox

        info = (self._hello or self.hello())["grid"]
        bx = info["bbox"]
        return Grid(BoundingBox(bx[0], bx[1], bx[2], bx[3]), int(info["k"]))

    def submit_batch(
        self, t: int, batch, newly_entered=(), quitted=(),
        n_real_active: int = 0,
    ) -> dict:
        """Submit one timestamp's candidate reports; returns the ack."""
        msg = schema.report_batch_message(
            t, batch, newly_entered, quitted, n_real_active,
            version=self.schema_version,
        )
        return self._request("POST", "/v1/batch", msg, expect="ack")

    def snapshot(self) -> np.ndarray:
        """Current cells of the server's live synthetic streams."""
        msg = self._request("GET", "/v1/snapshot", expect="snapshot")
        return schema.parse_snapshot(msg)

    def stats(self) -> dict:
        """The server session's monitoring counters."""
        return self._request("GET", "/v1/stats", expect="stats")["stats"]

    def checkpoint(self) -> Optional[str]:
        """Ask the server to write its configured checkpoint; returns the path."""
        msg = self._request("POST", "/v1/checkpoint", expect="checkpoint")
        return msg.get("path")

    def close(self) -> None:
        """End of stream: the server flushes and finalises the session."""
        self._request("POST", "/v1/close", expect="ack")

    def result(self, name: Optional[str] = None):
        """Fetch the synthetic database as a :class:`StreamDataset`."""
        from repro.geo.trajectory import CellTrajectory
        from repro.stream.stream import StreamDataset

        msg = self._request("GET", "/v1/result", expect="result")
        births, lengths, flat, n_timestamps, remote_name, user_ids = (
            schema.parse_result(msg)
        )
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        trajectories = [
            CellTrajectory(
                int(births[i]),
                flat[offsets[i]:offsets[i + 1]].tolist(),
                user_id=int(user_ids[i]),
            )
            for i in range(lengths.size)
        ]
        return StreamDataset(
            self.grid(),
            trajectories,
            n_timestamps=n_timestamps,
            name=name or remote_name,
        )

    def shutdown_server(self) -> None:
        """Close the remote session and stop the ingress loop."""
        self._request("POST", "/v1/shutdown", expect="ack")
