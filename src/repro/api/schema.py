"""Versioned request/response wire schema of the curator API.

Every message a session exchanges with a remote peer — and, identically,
what in-process callers see when they serialize sessions' inputs and
outputs — is a JSON envelope::

    {"schema": 1, "type": "<message type>", ...payload...}

Arrays travel in the :class:`~repro.stream.reports.ReportBatch` columnar
format: raw little-endian buffers, base64-encoded, with the dtype pinned
by this module (int64 ids/indices, int8 kind codes) — no pickling, no
object graphs, so the wire format is language-agnostic and safe to parse
from untrusted peers.

Message types (v1):

==================  ====================================================
``hello``           Server identity: supported schema versions, grid
                    geometry, state-space flags, session label.
``report-batch``    One timestamp's candidate reports plus the derived
                    enter/quit/active columns (client → server).
``ack``             Submission acknowledged; carries the rounds processed
                    so far.
``snapshot``        Live synthetic stream cells (server → client).
``stats``           The session's monitoring counters.
``checkpoint``      Request / confirm a curator checkpoint.
``result``          The finished synthetic stream database, columnar:
                    births, lengths and the flattened cell buffer.
``error``           Failure envelope: error class name + message.
==================  ====================================================

Version negotiation: the client sends the versions it speaks (the
``versions`` query parameter / ``hello`` request field); the server
answers with :func:`negotiate`'s pick — the highest version both sides
support — and every subsequent message carries that version in its
``schema`` field.  Unknown versions or types raise :class:`SchemaError`.
"""

from __future__ import annotations

import base64
import json
from typing import Iterable, Optional

import numpy as np

from repro.exceptions import ReproError
from repro.stream.reports import ReportBatch

#: Schema versions this build can speak, ascending.
SUPPORTED_VERSIONS = (1,)
#: The version this build prefers (and the default for new messages).
SCHEMA_VERSION = SUPPORTED_VERSIONS[-1]

#: Message types defined by v1.
MESSAGE_TYPES = (
    "hello",
    "report-batch",
    "ack",
    "snapshot",
    "stats",
    "checkpoint",
    "result",
    "error",
)

#: Wire dtypes by column name; everything else is rejected.
_COLUMN_DTYPES = {
    "user_ids": np.int64,
    "state_idx": np.int64,
    "kinds": np.int8,
    "newly_entered": np.int64,
    "quitted": np.int64,
    "cells": np.int64,
    "births": np.int64,
    "lengths": np.int64,
    "flat_cells": np.int64,
    "rows": np.int64,
}


class SchemaError(ReproError):
    """A wire message violated the schema (bad version, type or payload)."""


def negotiate(client_versions: Iterable[int]) -> int:
    """Highest schema version both peers speak.

    Raises :class:`SchemaError` when the intersection is empty — the
    caller should surface the server's :data:`SUPPORTED_VERSIONS` so the
    client can report something actionable.
    """
    try:
        offered = {int(v) for v in client_versions}
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"unparseable schema versions: {client_versions!r}") from exc
    usable = offered & set(SUPPORTED_VERSIONS)
    if not usable:
        raise SchemaError(
            f"no common schema version: client speaks {sorted(offered)}, "
            f"server speaks {list(SUPPORTED_VERSIONS)}"
        )
    return max(usable)


# ---------------------------------------------------------------------- #
# array codec
# ---------------------------------------------------------------------- #
def encode_array(name: str, values) -> str:
    """Base64 of the little-endian raw buffer, dtype pinned per column."""
    dtype = _COLUMN_DTYPES.get(name)
    if dtype is None:
        raise SchemaError(f"unknown wire column {name!r}")
    arr = np.ascontiguousarray(np.asarray(values, dtype=dtype))
    if arr.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return base64.b64encode(arr.tobytes()).decode("ascii")


def decode_array(name: str, data: str) -> np.ndarray:
    """Inverse of :func:`encode_array` (shape is always one-dimensional)."""
    dtype = _COLUMN_DTYPES.get(name)
    if dtype is None:
        raise SchemaError(f"unknown wire column {name!r}")
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
    except Exception as exc:
        raise SchemaError(f"column {name!r} is not valid base64") from exc
    width = np.dtype(dtype).itemsize
    if len(raw) % width:
        raise SchemaError(
            f"column {name!r}: buffer of {len(raw)} bytes is not a "
            f"multiple of the {width}-byte element size"
        )
    return np.frombuffer(raw, dtype=np.dtype(dtype).newbyteorder("<")).astype(
        dtype, copy=True
    )


# ---------------------------------------------------------------------- #
# envelopes
# ---------------------------------------------------------------------- #
def message(type_: str, version: int = SCHEMA_VERSION, **payload) -> dict:
    """A schema-stamped message envelope."""
    if type_ not in MESSAGE_TYPES:
        raise SchemaError(f"unknown message type {type_!r}")
    if version not in SUPPORTED_VERSIONS:
        raise SchemaError(f"unsupported schema version {version}")
    return {"schema": int(version), "type": type_, **payload}


def dumps(msg: dict) -> bytes:
    """Serialize an envelope to UTF-8 JSON bytes."""
    return json.dumps(msg, separators=(",", ":")).encode("utf-8")


def loads(data: bytes, expect: Optional[str] = None) -> dict:
    """Parse and validate an envelope; optionally pin its type."""
    try:
        msg = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemaError(f"unparseable wire message: {exc}") from exc
    if not isinstance(msg, dict):
        raise SchemaError(f"wire message must be a JSON object, got {type(msg)}")
    version = msg.get("schema")
    if version not in SUPPORTED_VERSIONS:
        raise SchemaError(f"unsupported schema version {version!r}")
    type_ = msg.get("type")
    if type_ not in MESSAGE_TYPES:
        raise SchemaError(f"unknown message type {type_!r}")
    if expect is not None and type_ != expect:
        if type_ == "error":
            raise SchemaError(
                f"peer reported {msg.get('error', 'error')}: "
                f"{msg.get('detail', '')}"
            )
        raise SchemaError(f"expected a {expect!r} message, got {type_!r}")
    return msg


# ---------------------------------------------------------------------- #
# v1 message builders / parsers
# ---------------------------------------------------------------------- #
def hello_message(grid, include_eq: bool, label: str, lam: float) -> dict:
    """Server identity: enough for a client to encode reports correctly."""
    bbox = grid.bbox
    return message(
        "hello",
        versions=list(SUPPORTED_VERSIONS),
        grid={
            "k": int(grid.k),
            "bbox": [
                float(bbox.min_x), float(bbox.min_y),
                float(bbox.max_x), float(bbox.max_y),
            ],
        },
        include_eq=bool(include_eq),
        label=str(label),
        lam=float(lam),
    )


def report_batch_message(
    t: int,
    batch: ReportBatch,
    newly_entered,
    quitted,
    n_real_active: int,
    version: int = SCHEMA_VERSION,
) -> dict:
    """One timestamp's candidate reports, columnar."""
    return message(
        "report-batch",
        version=version,
        t=int(t),
        n=len(batch),
        user_ids=encode_array("user_ids", batch.user_ids),
        state_idx=encode_array("state_idx", batch.state_idx),
        kinds=encode_array("kinds", batch.kinds),
        newly_entered=encode_array("newly_entered", newly_entered),
        quitted=encode_array("quitted", quitted),
        n_real_active=int(n_real_active),
    )


def parse_report_batch(msg: dict) -> tuple[int, ReportBatch, np.ndarray, np.ndarray, int]:
    """Inverse of :func:`report_batch_message`."""
    try:
        t = int(msg["t"])
        batch = ReportBatch(
            decode_array("user_ids", msg["user_ids"]),
            decode_array("state_idx", msg["state_idx"]),
            decode_array("kinds", msg["kinds"]),
        )
        entered = decode_array("newly_entered", msg["newly_entered"])
        quitted = decode_array("quitted", msg["quitted"])
        n_active = int(msg["n_real_active"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed report-batch message: {exc}") from exc
    if len(batch) != int(msg.get("n", len(batch))):
        raise SchemaError(
            f"report-batch length {len(batch)} disagrees with n={msg.get('n')}"
        )
    return t, batch, entered, quitted, n_active


def snapshot_message(cells: np.ndarray, version: int = SCHEMA_VERSION) -> dict:
    """Live synthetic stream cells."""
    return message(
        "snapshot", version=version,
        n=int(np.asarray(cells).size), cells=encode_array("cells", cells),
    )


def parse_snapshot(msg: dict) -> np.ndarray:
    return decode_array("cells", msg["cells"])


def stats_message(stats: dict, version: int = SCHEMA_VERSION) -> dict:
    return message("stats", version=version, stats=stats)


def result_message(
    births: np.ndarray,
    lengths: np.ndarray,
    flat_cells: np.ndarray,
    n_timestamps: int,
    name: str,
    user_ids: np.ndarray,
    version: int = SCHEMA_VERSION,
) -> dict:
    """The finished synthetic stream database, columnar.

    ``flat_cells`` is the concatenation of every stream's cells in
    sequence order; ``lengths`` recovers the per-stream slices — the same
    layout the dataset npz format and the trajectory store use.
    ``user_ids`` carries the streams' ids so a remote reconstruction and
    the server-side dataset agree on ``trajectory(uid)`` lookups.
    """
    return message(
        "result",
        version=version,
        n_streams=int(np.asarray(lengths).size),
        n_timestamps=int(n_timestamps),
        name=str(name),
        births=encode_array("births", births),
        lengths=encode_array("lengths", lengths),
        flat_cells=encode_array("flat_cells", flat_cells),
        user_ids=encode_array("user_ids", user_ids),
    )


def parse_result(
    msg: dict,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, str, np.ndarray]:
    try:
        births = decode_array("births", msg["births"])
        lengths = decode_array("lengths", msg["lengths"])
        flat_cells = decode_array("flat_cells", msg["flat_cells"])
        user_ids = decode_array("user_ids", msg["user_ids"])
        n_timestamps = int(msg["n_timestamps"])
        name = str(msg.get("name", "remote"))
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed result message: {exc}") from exc
    if births.size != lengths.size or births.size != user_ids.size:
        raise SchemaError(
            "result births/lengths/user_ids columns disagree on length"
        )
    if int(lengths.sum()) != flat_cells.size:
        raise SchemaError("result flat_cells length disagrees with lengths")
    return births, lengths, flat_cells, n_timestamps, name, user_ids


def error_message(exc: BaseException, version: int = SCHEMA_VERSION) -> dict:
    """Failure envelope (class name + message, never a traceback)."""
    return message(
        "error", version=version,
        error=type(exc).__name__, detail=str(exc),
    )
