"""Versioned request/response wire schema of the curator API.

Every message a session exchanges with a remote peer — and, identically,
what in-process callers see when they serialize sessions' inputs and
outputs — is a JSON envelope::

    {"schema": 1, "type": "<message type>", ...payload...}

Arrays travel in the :class:`~repro.stream.reports.ReportBatch` columnar
format: raw little-endian buffers, base64-encoded, with the dtype pinned
by this module (int64 ids/indices, int8 kind codes) — no pickling, no
object graphs, so the wire format is language-agnostic and safe to parse
from untrusted peers.

Message types (v1):

==================  ====================================================
``hello``           Server identity: supported schema versions, grid
                    geometry, state-space flags, session label.
``report-batch``    One timestamp's candidate reports plus the derived
                    enter/quit/active columns (client → server).
``ack``             Submission acknowledged; carries the rounds processed
                    so far.
``snapshot``        Live synthetic stream cells (server → client).
``stats``           The session's monitoring counters.
``checkpoint``      Request / confirm a curator checkpoint.
``result``          The finished synthetic stream database, columnar:
                    births, lengths and the flattened cell buffer.
``error``           Failure envelope: error class name + message.
==================  ====================================================

The ``shard-*`` types (submit / advance / merge / checkpoint / stats /
exit) are the shard-RPC vocabulary of the distributed collection plane
(:mod:`repro.core.distributed`): v2-frame-only messages exchanged between
the coordinator and its per-shard worker processes over local sockets.
They reuse this module's framing and column dtypes verbatim; the
``blob`` column of ``shard-checkpoint`` carries a pickled shard state and
is therefore only ever read from the coordinator's own workers, never
from a network ingress.

Version negotiation: the client sends the versions it speaks (the
``versions`` query parameter / ``hello`` request field); the server
answers with :func:`negotiate`'s pick — the highest version both sides
support — and every subsequent message carries that version in its
``schema`` field.  Unknown versions or types raise :class:`SchemaError`.

Schema **v2** adds a *binary frame* encoding of the same messages.  A
frame is length-prefixed::

    b"RSF2" | u32 header_len | u32 payload_len | header JSON | payload

where the header is the JSON envelope *without* its array columns (plus a
``_cols`` manifest of ``[name, length]`` pairs, in payload order) and the
payload is the concatenation of each column's raw little-endian buffer,
dtype pinned by :data:`_COLUMN_DTYPES` exactly as in v1 — so a v2 frame
and a v1 envelope of the same message decode to bit-identical arrays (the
differential tests pin this).  What v2 removes is the base64 inflation
and the JSON string parse on the megabyte array columns.  Because every
frame carries its own length, frames *concatenate*: one request body may
pipeline several ``report-batch`` frames back-to-back
(:func:`iter_frames` splits them), which is what the client's request
pipelining rides on.  v1 JSON remains fully supported as the reference
encoding and is what v1-only peers negotiate.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.exceptions import ReproError
from repro.stream.reports import ReportBatch

#: Schema versions this build can speak, ascending.
SUPPORTED_VERSIONS = (1, 2)
#: The version this build prefers (and the default for new messages).
SCHEMA_VERSION = SUPPORTED_VERSIONS[-1]
#: Versions whose array columns travel as raw binary frames.
FRAME_VERSIONS = (2,)

#: Magic prefix of a binary frame (RetraSyn Frame, format 2).
FRAME_MAGIC = b"RSF2"
#: HTTP content types of the two encodings.
CONTENT_TYPE_JSON = "application/json"
CONTENT_TYPE_FRAME = "application/x-retrasyn-frame"

_FRAME_LEN = struct.Struct("<II")
#: Bound on one frame's header, mirroring the ingress header bound.
_MAX_FRAME_HEADER = 1024 * 1024

#: Message types defined by v1.
MESSAGE_TYPES = (
    "hello",
    "report-batch",
    "ack",
    "snapshot",
    "stats",
    "checkpoint",
    "result",
    "error",
    # Shard-RPC types (v2 frames only): the coordinator <-> shard-worker
    # protocol of the distributed collection plane.  Same framing, same
    # column dtypes — a shard worker is just another peer on the wire.
    "shard-submit",
    "shard-advance",
    "shard-merge",
    "shard-checkpoint",
    "shard-stats",
    "shard-exit",
    # Fused-round variants: one frame carries up to ``round_batch`` closed
    # timestamps (shard-submit-many), their schedule-divided advances
    # (shard-advance-many), and the per-timestamp merge outputs back
    # (shard-merge-many).  Depth 1 degenerates to the singular verbs.
    "shard-submit-many",
    "shard-advance-many",
    "shard-merge-many",
)

#: Wire dtypes by column name; everything else is rejected.
_COLUMN_DTYPES = {
    "user_ids": np.int64,
    "state_idx": np.int64,
    "kinds": np.int8,
    "newly_entered": np.int64,
    "quitted": np.int64,
    "cells": np.int64,
    "births": np.int64,
    "lengths": np.int64,
    "flat_cells": np.int64,
    "rows": np.int64,
    # Shard-RPC columns: raw per-position one-counts, the round's support
    # mask, and the opaque checkpoint payload a worker ships through the
    # coordinator (trusted local transport only — never an ingress format).
    "ones": np.float64,
    "support": np.int8,
    "blob": np.uint8,
}


class SchemaError(ReproError):
    """A wire message violated the schema (bad version, type or payload)."""


def negotiate(client_versions: Iterable[int]) -> int:
    """Highest schema version both peers speak.

    Raises :class:`SchemaError` when the intersection is empty — the
    caller should surface the server's :data:`SUPPORTED_VERSIONS` so the
    client can report something actionable.
    """
    try:
        offered = {int(v) for v in client_versions}
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"unparseable schema versions: {client_versions!r}") from exc
    usable = offered & set(SUPPORTED_VERSIONS)
    if not usable:
        raise SchemaError(
            f"no common schema version: client speaks {sorted(offered)}, "
            f"server speaks {list(SUPPORTED_VERSIONS)}"
        )
    return max(usable)


# ---------------------------------------------------------------------- #
# array codec
# ---------------------------------------------------------------------- #
def encode_array(name: str, values) -> str:
    """Base64 of the little-endian raw buffer, dtype pinned per column."""
    dtype = _COLUMN_DTYPES.get(name)
    if dtype is None:
        raise SchemaError(f"unknown wire column {name!r}")
    arr = np.ascontiguousarray(np.asarray(values, dtype=dtype))
    if arr.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return base64.b64encode(arr.tobytes()).decode("ascii")


def decode_array(name: str, data) -> np.ndarray:
    """Inverse of :func:`encode_array` (shape is always one-dimensional).

    Accepts either the v1 base64 text or — on the v2 frame path, where
    :func:`load_frame` has already mapped the column to a typed view over
    the request body — a numpy array, which passes through unchanged
    (zero-copy) after a dtype check.  Every ``parse_*`` helper therefore
    works on both encodings.
    """
    dtype = _COLUMN_DTYPES.get(name)
    if dtype is None:
        raise SchemaError(f"unknown wire column {name!r}")
    if isinstance(data, np.ndarray):
        if data.dtype != np.dtype(dtype):
            raise SchemaError(
                f"column {name!r}: expected dtype {np.dtype(dtype).name}, "
                f"got {data.dtype.name}"
            )
        return np.atleast_1d(data)
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
    except Exception as exc:
        raise SchemaError(f"column {name!r} is not valid base64") from exc
    width = np.dtype(dtype).itemsize
    if len(raw) % width:
        raise SchemaError(
            f"column {name!r}: buffer of {len(raw)} bytes is not a "
            f"multiple of the {width}-byte element size"
        )
    return np.frombuffer(raw, dtype=np.dtype(dtype).newbyteorder("<")).astype(
        dtype, copy=True
    )


def _enc(name: str, values, version: int):
    """Encode one column for ``version``: base64 text (v1), raw array (v2).

    The v2 value is the *same* pinned-dtype little-endian buffer v1
    base64-encodes — :func:`dump_frame` later moves it into the frame
    payload verbatim, which is what makes the two encodings bit-identical.
    """
    if version in FRAME_VERSIONS:
        dtype = _COLUMN_DTYPES.get(name)
        if dtype is None:
            raise SchemaError(f"unknown wire column {name!r}")
        arr = np.ascontiguousarray(np.asarray(values, dtype=dtype))
        if arr.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        return np.atleast_1d(arr)
    return encode_array(name, values)


# ---------------------------------------------------------------------- #
# envelopes
# ---------------------------------------------------------------------- #
def message(type_: str, version: int = SCHEMA_VERSION, **payload) -> dict:
    """A schema-stamped message envelope."""
    if type_ not in MESSAGE_TYPES:
        raise SchemaError(f"unknown message type {type_!r}")
    if version not in SUPPORTED_VERSIONS:
        raise SchemaError(f"unsupported schema version {version}")
    return {"schema": int(version), "type": type_, **payload}


def dumps(msg: dict) -> bytes:
    """Serialize an envelope to UTF-8 JSON bytes."""
    return json.dumps(msg, separators=(",", ":")).encode("utf-8")


def _validate(msg: dict, expect: Optional[str]) -> dict:
    """Shared envelope validation of both the JSON and frame decoders."""
    version = msg.get("schema")
    if version not in SUPPORTED_VERSIONS:
        raise SchemaError(f"unsupported schema version {version!r}")
    type_ = msg.get("type")
    if type_ not in MESSAGE_TYPES:
        raise SchemaError(f"unknown message type {type_!r}")
    if expect is not None and type_ != expect:
        if type_ == "error":
            raise SchemaError(
                f"peer reported {msg.get('error', 'error')}: "
                f"{msg.get('detail', '')}"
            )
        raise SchemaError(f"expected a {expect!r} message, got {type_!r}")
    return msg


def loads(data: bytes, expect: Optional[str] = None) -> dict:
    """Parse and validate a JSON envelope; optionally pin its type."""
    try:
        msg = json.loads(bytes(data).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemaError(f"unparseable wire message: {exc}") from exc
    if not isinstance(msg, dict):
        raise SchemaError(f"wire message must be a JSON object, got {type(msg)}")
    return _validate(msg, expect)


# ---------------------------------------------------------------------- #
# v2 binary frames
# ---------------------------------------------------------------------- #
def dump_frame_parts(msg: dict) -> list:
    """Serialize a v2 envelope as a list of frame segments.

    The segments, concatenated, are exactly :func:`dump_frame`'s output,
    but array columns stay as their own buffer-protocol entries so a
    vectored send (``socket.sendmsg``) can ship the frame without first
    copying every column into one contiguous bytes object.
    """
    version = msg.get("schema")
    if version not in FRAME_VERSIONS:
        raise SchemaError(
            f"schema version {version!r} has no frame encoding; use dumps()"
        )
    header: dict = {}
    cols: list[list] = []
    buffers: list = []
    payload_len = 0
    for key, value in msg.items():
        if isinstance(value, np.ndarray):
            dtype = _COLUMN_DTYPES.get(key)
            if dtype is None:
                raise SchemaError(f"unknown wire column {key!r}")
            arr = np.ascontiguousarray(value.astype(dtype, copy=False))
            if arr.dtype.byteorder == ">":  # pragma: no cover - BE hosts
                arr = arr.astype(arr.dtype.newbyteorder("<"))
            cols.append([key, int(arr.size)])
            buffers.append(arr.data)
            payload_len += arr.nbytes
        else:
            header[key] = value
    header["_cols"] = cols
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    prefix = b"".join(
        (FRAME_MAGIC, _FRAME_LEN.pack(len(header_bytes), payload_len),
         header_bytes)
    )
    return [prefix, *buffers]


def dump_frame(msg: dict) -> bytes:
    """Serialize a v2 envelope to one length-prefixed binary frame.

    Array-valued entries (what :func:`_enc` produces for frame versions)
    move into the payload as raw little-endian buffers; everything else
    stays in the JSON header, alongside a ``_cols`` manifest of
    ``[name, element_count]`` pairs in payload order.
    """
    return b"".join(bytes(part) for part in dump_frame_parts(msg))


def load_frame(
    data, offset: int = 0, expect: Optional[str] = None
) -> tuple[dict, int]:
    """Parse one frame starting at ``offset``; return ``(msg, next_offset)``.

    Columns come back as numpy array *views* over ``data`` (zero-copy,
    read-only); :func:`decode_array` passes them through, so the ``parse_*``
    helpers work unchanged.  ``next_offset`` points at the byte after the
    frame, which is how :func:`iter_frames` walks a pipelined body.
    """
    view = memoryview(data)[offset:]
    prefix = FRAME_MAGIC + b"\x00" * _FRAME_LEN.size
    if len(view) < len(prefix):
        raise SchemaError("truncated frame: missing length prefix")
    if bytes(view[: len(FRAME_MAGIC)]) != FRAME_MAGIC:
        raise SchemaError("not a binary frame (bad magic)")
    header_len, payload_len = _FRAME_LEN.unpack(
        view[len(FRAME_MAGIC) : len(prefix)]
    )
    if header_len > _MAX_FRAME_HEADER:
        raise SchemaError(
            f"frame header of {header_len} bytes exceeds the "
            f"{_MAX_FRAME_HEADER}-byte bound"
        )
    body_start = len(prefix)
    end = body_start + header_len + payload_len
    if len(view) < end:
        raise SchemaError(
            f"truncated frame: declares {end} bytes, body holds {len(view)}"
        )
    try:
        msg = json.loads(bytes(view[body_start : body_start + header_len]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemaError(f"unparseable frame header: {exc}") from exc
    if not isinstance(msg, dict):
        raise SchemaError("frame header must be a JSON object")
    cols = msg.pop("_cols", [])
    if not isinstance(cols, list):
        raise SchemaError("frame _cols manifest must be a list")
    payload = view[body_start + header_len : end]
    pos = 0
    for entry in cols:
        try:
            name, count = entry
            count = int(count)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"malformed _cols entry {entry!r}") from exc
        dtype = _COLUMN_DTYPES.get(name)
        if dtype is None:
            raise SchemaError(f"unknown wire column {name!r}")
        nbytes = count * np.dtype(dtype).itemsize
        if count < 0 or pos + nbytes > len(payload):
            raise SchemaError(
                f"column {name!r} overruns the frame payload"
            )
        msg[name] = np.frombuffer(
            payload[pos : pos + nbytes], dtype=np.dtype(dtype).newbyteorder("<")
        )
        pos += nbytes
    if pos != len(payload):
        raise SchemaError(
            f"frame payload holds {len(payload) - pos} bytes beyond its "
            "column manifest"
        )
    return _validate(msg, expect), offset + end


def iter_frames(data, expect: Optional[str] = None) -> Iterator[dict]:
    """All frames in a concatenated (pipelined) body, in order."""
    view = memoryview(data)
    offset = 0
    while offset < len(view):
        msg, offset = load_frame(view, offset, expect=expect)
        yield msg


def is_frame(data) -> bool:
    """True when ``data`` starts with the binary-frame magic."""
    return bytes(memoryview(data)[: len(FRAME_MAGIC)]) == FRAME_MAGIC


def dumps_any(msg: dict) -> bytes:
    """Serialize with the encoding the message's version implies."""
    if msg.get("schema") in FRAME_VERSIONS:
        return dump_frame(msg)
    return dumps(msg)


def loads_any(data, expect: Optional[str] = None) -> dict:
    """Parse either encoding, sniffing the frame magic.

    A body holding several concatenated frames is rejected here — use
    :func:`iter_frames` where pipelining is expected.
    """
    if is_frame(data):
        msg, end = load_frame(data, 0, expect=expect)
        if end != len(memoryview(data)):
            raise SchemaError(
                "trailing bytes after frame (pipelined body? use iter_frames)"
            )
        return msg
    return loads(data, expect=expect)


# ---------------------------------------------------------------------- #
# v1 message builders / parsers
# ---------------------------------------------------------------------- #
def hello_message(grid, include_eq: bool, label: str, lam: float) -> dict:
    """Server identity: enough for a client to encode reports correctly."""
    bbox = grid.bbox
    return message(
        "hello",
        versions=list(SUPPORTED_VERSIONS),
        grid={
            "k": int(grid.k),
            "bbox": [
                float(bbox.min_x), float(bbox.min_y),
                float(bbox.max_x), float(bbox.max_y),
            ],
        },
        include_eq=bool(include_eq),
        label=str(label),
        lam=float(lam),
    )


def report_batch_message(
    t: int,
    batch: ReportBatch,
    newly_entered,
    quitted,
    n_real_active: int,
    version: int = SCHEMA_VERSION,
) -> dict:
    """One timestamp's candidate reports, columnar."""
    return message(
        "report-batch",
        version=version,
        t=int(t),
        n=len(batch),
        user_ids=_enc("user_ids", batch.user_ids, version),
        state_idx=_enc("state_idx", batch.state_idx, version),
        kinds=_enc("kinds", batch.kinds, version),
        newly_entered=_enc("newly_entered", newly_entered, version),
        quitted=_enc("quitted", quitted, version),
        n_real_active=int(n_real_active),
    )


def parse_report_batch(msg: dict) -> tuple[int, ReportBatch, np.ndarray, np.ndarray, int]:
    """Inverse of :func:`report_batch_message`."""
    try:
        t = int(msg["t"])
        batch = ReportBatch(
            decode_array("user_ids", msg["user_ids"]),
            decode_array("state_idx", msg["state_idx"]),
            decode_array("kinds", msg["kinds"]),
        )
        entered = decode_array("newly_entered", msg["newly_entered"])
        quitted = decode_array("quitted", msg["quitted"])
        n_active = int(msg["n_real_active"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed report-batch message: {exc}") from exc
    if len(batch) != int(msg.get("n", len(batch))):
        raise SchemaError(
            f"report-batch length {len(batch)} disagrees with n={msg.get('n')}"
        )
    return t, batch, entered, quitted, n_active


def snapshot_message(cells: np.ndarray, version: int = SCHEMA_VERSION) -> dict:
    """Live synthetic stream cells."""
    return message(
        "snapshot", version=version,
        n=int(np.asarray(cells).size), cells=_enc("cells", cells, version),
    )


def parse_snapshot(msg: dict) -> np.ndarray:
    return decode_array("cells", msg["cells"])


def stats_message(stats: dict, version: int = SCHEMA_VERSION) -> dict:
    return message("stats", version=version, stats=stats)


def result_message(
    births: np.ndarray,
    lengths: np.ndarray,
    flat_cells: np.ndarray,
    n_timestamps: int,
    name: str,
    user_ids: np.ndarray,
    version: int = SCHEMA_VERSION,
) -> dict:
    """The finished synthetic stream database, columnar.

    ``flat_cells`` is the concatenation of every stream's cells in
    sequence order; ``lengths`` recovers the per-stream slices — the same
    layout the dataset npz format and the trajectory store use.
    ``user_ids`` carries the streams' ids so a remote reconstruction and
    the server-side dataset agree on ``trajectory(uid)`` lookups.
    """
    return message(
        "result",
        version=version,
        n_streams=int(np.asarray(lengths).size),
        n_timestamps=int(n_timestamps),
        name=str(name),
        births=_enc("births", births, version),
        lengths=_enc("lengths", lengths, version),
        flat_cells=_enc("flat_cells", flat_cells, version),
        user_ids=_enc("user_ids", user_ids, version),
    )


def parse_result(
    msg: dict,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, str, np.ndarray]:
    try:
        births = decode_array("births", msg["births"])
        lengths = decode_array("lengths", msg["lengths"])
        flat_cells = decode_array("flat_cells", msg["flat_cells"])
        user_ids = decode_array("user_ids", msg["user_ids"])
        n_timestamps = int(msg["n_timestamps"])
        name = str(msg.get("name", "remote"))
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed result message: {exc}") from exc
    if births.size != lengths.size or births.size != user_ids.size:
        raise SchemaError(
            "result births/lengths/user_ids columns disagree on length"
        )
    if int(lengths.sum()) != flat_cells.size:
        raise SchemaError("result flat_cells length disagrees with lengths")
    return births, lengths, flat_cells, n_timestamps, name, user_ids


def error_message(exc: BaseException, version: int = SCHEMA_VERSION) -> dict:
    """Failure envelope (class name + message, never a traceback)."""
    return message(
        "error", version=version,
        error=type(exc).__name__, detail=str(exc),
    )
