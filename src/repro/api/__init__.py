"""Unified curator API: the single front door to every engine family.

* :mod:`repro.api.specs` — the layered, validated configuration model
  (``PrivacySpec`` / ``EngineSpec`` / ``ShardingSpec`` / ``ServiceSpec``
  composed into ``SessionSpec``); ``RetraSynConfig`` is a flat façade
  over it.
* :mod:`repro.api.session` — the engine-agnostic :class:`CuratorSession`
  protocol (``submit_batch / advance / snapshot / result / checkpoint /
  close``) and the :func:`create_session` factory that returns any of the
  three engine families behind it.
* :mod:`repro.api.schema` — the versioned request/response wire schema
  spoken identically in-process and over the network (arrays travel in
  the ``ReportBatch`` columnar format).
* :mod:`repro.api.http` — the asyncio HTTP ingress (``repro serve
  --http PORT``) in front of the ingestion service.
* :mod:`repro.api.client` — :class:`Client`, the remote twin of a local
  session, for submission and querying over the ingress.

The submodules are imported lazily so that ``repro.core`` (which lifts
configs into specs during validation) can import :mod:`repro.api.specs`
without dragging the whole session/transport stack into every import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    # specs
    "PrivacySpec": "repro.api.specs",
    "EngineSpec": "repro.api.specs",
    "ShardingSpec": "repro.api.specs",
    "ServiceSpec": "repro.api.specs",
    "SessionSpec": "repro.api.specs",
    # sessions
    "CuratorSession": "repro.api.session",
    "DirectSession": "repro.api.session",
    "IngestSession": "repro.api.session",
    "create_session": "repro.api.session",
    "load_session": "repro.api.session",
    # wire schema + transports
    "SCHEMA_VERSION": "repro.api.schema",
    "Client": "repro.api.client",
    "serve_http": "repro.api.http",
    "HttpIngress": "repro.api.http",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.api.client import Client
    from repro.api.http import HttpIngress, serve_http
    from repro.api.schema import SCHEMA_VERSION
    from repro.api.session import (
        CuratorSession,
        DirectSession,
        IngestSession,
        create_session,
        load_session,
    )
    from repro.api.specs import (
        EngineSpec,
        PrivacySpec,
        ServiceSpec,
        SessionSpec,
        ShardingSpec,
    )


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
