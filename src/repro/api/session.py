"""Engine-agnostic curator sessions.

Before this module, callers hard-coded engine classes: experiments built
:class:`~repro.core.online.OnlineRetraSyn`, scale tests built
:class:`~repro.core.sharded.ShardedOnlineRetraSyn`, and deployments built
:class:`~repro.stream.ingest.IngestionService` — three overlapping
surfaces for one curator.  A :class:`CuratorSession` is the one protocol
they all speak now:

``submit_batch(t, reports)``
    Hand the session one timestamp's candidate reports (columnar
    :class:`~repro.stream.reports.ReportBatch` or object pairs).
``advance()``
    Run every collection → update → synthesis round that is ready, in
    timestamp order, returning the per-round
    :class:`~repro.core.online.TimestepResult`\\ s.
``snapshot()``
    Current cells of all live synthetic streams (numpy array).
``stats()``
    JSON-safe counters for monitoring.
``result()``
    Package everything synthesized so far as a
    :class:`~repro.core.retrasyn.SynthesisRun`.
``checkpoint(path)`` / ``close()``
    Persistence and lifecycle.

:func:`create_session` is the factory: it reads a
:class:`~repro.api.specs.SessionSpec` and returns the right engine family
behind the protocol — unsharded, sharded (``sharding.n_shards > 1``), or
the watermarked ingestion front-end (``service.transport="ingest"``).
The HTTP ingress (:mod:`repro.api.http`) serves exactly this protocol
over the wire, so remote and in-process callers are interchangeable.
"""

from __future__ import annotations

import time
import warnings
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.api.specs import ServiceSpec, SessionSpec
from repro.core.online import OnlineRetraSyn, TimestepResult
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry


@runtime_checkable
class CuratorSession(Protocol):
    """The protocol every engine family implements (structural typing)."""

    spec: SessionSpec

    def submit_batch(
        self, t: int, participants, newly_entered=(), quitted=(),
        n_real_active: int = 0,
    ) -> None: ...

    def advance(self) -> list[TimestepResult]: ...

    def snapshot(self) -> np.ndarray: ...

    def stats(self) -> dict: ...

    def result(self, n_timestamps: Optional[int] = None, name: Optional[str] = None): ...

    def checkpoint(self, path=None) -> None: ...

    def close(self) -> None: ...


class _SessionBase:
    """State and behaviour shared by the in-process session flavours."""

    def __init__(self, curator, spec: Optional[SessionSpec] = None) -> None:
        self.curator = curator
        self.spec = (
            spec
            if spec is not None
            else SessionSpec.from_config(curator.config)
        )
        self._closed = False
        self._since_checkpoint = 0
        # The registry lives here, never on the curator: curator
        # checkpoint_state() pickles __dict__ and metrics must not leak
        # into checkpoints. Most series are callbacks over state the
        # engines already keep, so the hot path pays only one histogram
        # observation per round.
        self.metrics = MetricsRegistry()
        self._register_curator_metrics()

    def _register_curator_metrics(self) -> None:
        m, c = self.metrics, self.curator
        self._round_hist = m.histogram(
            "retrasyn_round_seconds",
            "End-to-end latency of one collection-update-synthesis round.",
        )
        m.counter(
            "retrasyn_rounds_total", "Closed timestamps processed."
        ).set_function(lambda: len(c.reporters_per_timestamp))
        m.gauge(
            "retrasyn_live_streams", "Live synthetic trajectory streams."
        ).set_function(lambda: int(c.synthesizer.n_live))
        m.gauge(
            "retrasyn_store_rows",
            "Total rows (live + retired) in the columnar trajectory store.",
        ).set_function(
            lambda: int(getattr(getattr(c, "synthesizer", None), "store").n_total)
            if getattr(getattr(c, "synthesizer", None), "store", None) is not None
            else 0
        )
        phases = m.counter(
            "retrasyn_phase_seconds_total",
            "Cumulative seconds spent per pipeline phase.",
            labelnames=("phase",),
        )
        for phase in getattr(c, "timings", {}):
            phases.labels(phase).set_function(
                lambda p=phase: float(getattr(c, "timings", {}).get(p, 0.0))
            )
        m.counter(
            "retrasyn_privacy_spend_events_total",
            "Per-user budget spends recorded by the privacy ledger(s).",
        ).set_function(
            lambda: int(getattr(c.accountant, "n_spend_events", 0))
            if c.accountant is not None else 0
        )
        m.counter(
            "retrasyn_privacy_refusals_total",
            "Spends refused (strict) or flagged for breaching the w-event "
            "window bound.",
        ).set_function(
            lambda: int(getattr(c.accountant, "n_refusals", 0))
            if c.accountant is not None else 0
        )
        m.gauge(
            "retrasyn_privacy_max_window_spend",
            "Largest any-user any-window budget spend observed so far.",
        ).set_function(
            lambda: float(c.accountant.max_window_spend())
            if c.accountant is not None else 0.0
        )
        pool = getattr(c, "_pool", None)
        if pool is not None and hasattr(pool, "shard_round_seconds"):
            shard_gauge = m.gauge(
                "retrasyn_shard_round_seconds",
                "Wall-clock seconds of each distributed shard's last "
                "collection round.",
                labelnames=("shard",),
            )
            for k in range(len(pool)):
                shard_gauge.labels(str(k)).set_function(
                    lambda k=k: float(pool.shard_round_seconds.get(k, 0.0))
                )
        if pool is not None and hasattr(pool, "frames_sent"):
            frames = m.counter(
                "retrasyn_shard_frames_total",
                "RSF2 frames exchanged with the shard workers.",
                labelnames=("direction",),
            )
            frames.labels("sent").set_function(lambda: int(pool.frames_sent))
            frames.labels("received").set_function(
                lambda: int(pool.frames_received)
            )
            sbytes = m.counter(
                "retrasyn_shard_bytes_total",
                "On-wire bytes exchanged with the shard workers.",
                labelnames=("direction",),
            )
            sbytes.labels("sent").set_function(lambda: int(pool.bytes_sent))
            sbytes.labels("received").set_function(
                lambda: int(pool.bytes_received)
            )
            # The pool observes each submit/advance round-trip's wall
            # seconds (fused or per-timestamp) into this histogram.
            rt_hist = m.histogram(
                "retrasyn_shard_roundtrip_seconds",
                "Wall-clock seconds of one coordinator-side shard "
                "round-trip (submit or advance, fused or per-timestamp).",
            )
            pool.latency_observer = rt_hist.observe

    # -- shared protocol surface --------------------------------------- #
    def snapshot(self) -> np.ndarray:
        """Current cells of all live synthetic streams."""
        return self.curator.live_snapshot()

    def stats(self) -> dict:
        """JSON-safe monitoring counters."""
        c = self.curator
        out = {
            "n_timestamps": len(c.reporters_per_timestamp),
            "last_t": -1 if c._last_t is None else int(c._last_t),
            "n_reporters": int(sum(c.reporters_per_timestamp)),
            "n_live_synthetic": int(c.synthesizer.n_live),
        }
        if c.accountant is not None:
            out["privacy"] = {
                k: (bool(v) if isinstance(v, (bool, np.bool_)) else v)
                for k, v in c.accountant.summary().items()
            }
        return out

    def result(
        self, n_timestamps: Optional[int] = None, name: Optional[str] = None
    ):
        """Everything synthesized so far as a finished SynthesisRun."""
        if n_timestamps is None:
            last_t = self.curator._last_t
            n_timestamps = 0 if last_t is None else last_t + 1
        if name is None:
            name = f"{self.curator.config.label}(session)"
        return self.curator.result(n_timestamps, name=name)

    def checkpoint(self, path=None) -> None:
        """Freeze the curator to ``path`` (default: the spec's path)."""
        from repro.core.persistence import save_checkpoint

        path = path if path is not None else self.spec.service.checkpoint_path
        if path is None:
            raise ConfigurationError(
                "checkpoint() needs a path: pass one or set "
                "ServiceSpec.checkpoint_path"
            )
        save_checkpoint(
            self.curator,
            path,
            spec=self.spec,
            keep=self.spec.service.checkpoint_keep,
        )

    def close(self, *, flush_partial: bool = True) -> None:
        """End of stream: final checkpoint, then release engine resources.

        ``flush_partial=False`` is the graceful-drain flavour: only
        watermark-complete timestamps are processed, so the final
        checkpoint lands on a timestamp boundary and a resumed replay of
        the unprocessed tail is bit-identical to an uninterrupted run.
        """
        if self._closed:
            return
        self._closed = True
        self._drain_on_close(flush_partial)
        if self.spec.service.checkpoint_path is not None:
            self.checkpoint()
        closer = getattr(self.curator, "close", None)
        if closer is not None:
            closer()

    def _drain_on_close(self, flush_partial: bool = True) -> None:
        pass  # overridden by IngestSession

    @property
    def _round_batch(self) -> int:
        """Pipeline depth: timestamps handed to the curator per group."""
        return max(1, int(getattr(self.spec.sharding, "round_batch", 1)))

    def _after_timestep(self, n: int = 1) -> None:
        """Periodic checkpointing shared by both session flavours.

        ``n`` counts the rounds a pipelined group just completed: with
        ``round_batch > 1`` at most one checkpoint is written per group
        boundary (a checkpoint can only freeze inter-round state).
        """
        svc = self.spec.service
        if svc.checkpoint_path is not None and svc.checkpoint_every:
            self._since_checkpoint += n
            if self._since_checkpoint >= svc.checkpoint_every:
                self.checkpoint()
                self._since_checkpoint = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DirectSession(_SessionBase):
    """Synchronous façade over an in-process curator engine.

    ``submit_batch`` stages exactly one timestamp's reports; ``advance``
    drives the staged rounds through
    :meth:`~repro.core.online.OnlineRetraSyn.process_timestep` in order.
    Backs both the unsharded and the hash-sharded collection engines —
    whichever :func:`create_session` routed to.
    """

    def __init__(self, curator, spec: Optional[SessionSpec] = None) -> None:
        super().__init__(curator, spec)
        self._staged: list[tuple] = []

    def _drain_on_close(self, flush_partial: bool = True) -> None:
        # close() means end of stream for every transport: whatever was
        # submitted but not yet advanced is processed, exactly as the
        # ingest session flushes its assembler.  There is no watermark
        # here — every staged batch is complete — so drain processes too.
        self.advance()

    def submit_batch(
        self, t: int, participants, newly_entered=(), quitted=(),
        n_real_active: int = 0,
    ) -> None:
        """Stage one timestamp's candidate reports (processed by advance)."""
        self._staged.append(
            (int(t), participants, newly_entered, quitted, int(n_real_active))
        )

    def advance(self) -> list[TimestepResult]:
        """Process every staged timestamp, in submission order.

        With ``sharding.round_batch > 1`` the staged timestamps are handed
        to the curator in groups of that depth
        (:meth:`~repro.core.online.OnlineRetraSyn.process_timesteps`), so
        the sharded engines can fuse shard round-trips and overlap
        synthesis with the next round's collection.  Depth 1 is today's
        exact per-timestamp path.
        """
        results = []
        staged, self._staged = self._staged, []
        depth = self._round_batch
        if depth == 1:
            for t, participants, entered, quitted, n_active in staged:
                tic = time.perf_counter()
                results.append(
                    self.curator.process_timestep(
                        t,
                        participants=participants,
                        newly_entered=entered,
                        quitted=quitted,
                        n_real_active=n_active,
                    )
                )
                self._round_hist.observe(time.perf_counter() - tic)
                self._after_timestep()
            return results
        for lo in range(0, len(staged), depth):
            group = staged[lo : lo + depth]
            tic = time.perf_counter()
            group_results = self.curator.process_timesteps(group)
            wall = time.perf_counter() - tic
            # Per-round share of the group's wall, so the histogram's
            # count stays one observation per round and its sum stays the
            # total wall-clock.
            for r in group_results:
                results.append(r)
                self._round_hist.observe(wall / max(1, len(group_results)))
            self._after_timestep(len(group_results))
        return results


class IngestSession(_SessionBase):
    """Session over the watermarked ingestion front-end.

    Reports may arrive out of order (within the
    ``ServiceSpec.max_lateness`` bound) and as loose per-user events
    (:meth:`submit_report`) or whole batches; a
    :class:`~repro.stream.ingest.TimestampAssembler` reorders them into
    canonical closed timestamps, and ``advance`` processes everything at
    or below the watermark.  ``close`` flushes the tail of the stream.
    The asyncio :class:`~repro.stream.ingest.IngestionService` is this
    session plus a bounded backpressure queue.
    """

    def __init__(self, curator, spec: Optional[SessionSpec] = None) -> None:
        from repro.stream.ingest import IngestStats, make_assembler

        if spec is None:
            spec = SessionSpec.from_config(
                curator.config, service=ServiceSpec(transport="ingest")
            )
        super().__init__(curator, spec)
        last_t = getattr(curator, "_last_t", None)
        self.assembler = make_assembler(
            curator.space,
            start_t=0 if last_t is None else last_t + 1,
            max_lateness=self.spec.service.max_lateness,
            consumers=self.spec.service.ingest_consumers,
        )
        self.ingest_stats = IngestStats()
        self._register_ingest_metrics()

    def _register_ingest_metrics(self) -> None:
        m, s, asm = self.metrics, self.ingest_stats, self.assembler
        m.counter(
            "retrasyn_ingest_submitted_total",
            "Reports accepted into the watermark assembler.",
        ).set_function(lambda: s.n_submitted)
        m.counter(
            "retrasyn_ingest_processed_total",
            "Reports whose timestamp closed and reached the curator.",
        ).set_function(lambda: s.n_reports_processed)
        m.counter(
            "retrasyn_ingest_late_dropped_total",
            "Reports dropped for arriving beyond the lateness bound.",
        ).set_function(lambda: int(asm.n_late_dropped))
        m.counter(
            "retrasyn_ingest_backpressure_waits_total",
            "Producer waits on the bounded ingestion queue.",
        ).set_function(lambda: s.backpressure_waits)
        m.counter(
            "retrasyn_checkpoints_written_total",
            "Checkpoints written (periodic and final).",
        ).set_function(lambda: s.checkpoints_written)
        m.gauge(
            "retrasyn_ingest_backlog",
            "Reports buffered awaiting their timestamp's close.",
        ).set_function(lambda: int(asm.backlog))
        m.gauge(
            "retrasyn_ingest_backlog_high_water",
            "Largest backlog observed since the session started.",
        ).set_function(lambda: int(asm.backlog_high_water))
        m.gauge(
            "retrasyn_ingest_watermark",
            "Largest timestamp currently safe to close.",
        ).set_function(lambda: int(asm.watermark))
        m.gauge(
            "retrasyn_ingest_watermark_lag",
            "Timestamps seen in the stream but not yet closed.",
        ).set_function(lambda: int(asm.watermark_lag))
        m.gauge(
            "retrasyn_ingest_next_t",
            "Next timestamp the assembler will close.",
        ).set_function(lambda: int(asm.next_t))

    # -- feeding -------------------------------------------------------- #
    def submit_report(self, report) -> None:
        """Buffer one loose :class:`~repro.stream.ingest.UserReport`."""
        self.assembler.add(report)
        self.ingest_stats.n_submitted += 1

    def submit_batch(
        self, t: int, participants, newly_entered=(), quitted=(),
        n_real_active: int = 0,
    ) -> None:
        """Buffer one timestamp's reports.

        ``newly_entered`` / ``quitted`` / ``n_real_active`` are accepted
        for protocol compatibility but derived from the report kinds when
        the timestamp closes — the assembler is the source of truth here.
        """
        from repro.stream.reports import as_report_batch

        batch = as_report_batch(self.curator.space, participants)
        self.assembler.add_batch(t, batch)
        self.ingest_stats.n_submitted += len(batch)

    # -- processing ----------------------------------------------------- #
    def advance(self) -> list[TimestepResult]:
        """Close and process every timestamp at or below the watermark.

        With ``sharding.round_batch > 1`` the closed timestamps are handed
        to the curator in groups of that depth so the sharded engines can
        fuse shard round-trips and overlap synthesis with the next round's
        collection.  Depth 1 keeps the exact per-timestamp path.
        """
        ready = self.assembler.pop_ready()
        depth = self._round_batch
        if depth == 1:
            results = [self._process(c) for c in ready]
        else:
            results = []
            for lo in range(0, len(ready), depth):
                results.extend(self._process_group(ready[lo : lo + depth]))
        self.ingest_stats.n_late_dropped = self.assembler.n_late_dropped
        return results

    def _process_group(self, group) -> list[TimestepResult]:
        tic = time.perf_counter()
        group_results = self.curator.process_timesteps(
            [
                (c.t, c.batch, c.newly_entered, c.quitted, c.n_active)
                for c in group
            ]
        )
        wall = time.perf_counter() - tic
        for closed in group:
            self._round_hist.observe(wall / max(1, len(group_results)))
            self.ingest_stats.n_timestamps += 1
            self.ingest_stats.n_reports_processed += len(closed.batch)
        self._after_timestep(len(group_results))
        return group_results

    def _process(self, closed) -> TimestepResult:
        tic = time.perf_counter()
        result = self.curator.process_timestep(
            closed.t,
            participants=closed.batch,
            newly_entered=closed.newly_entered,
            quitted=closed.quitted,
            n_real_active=closed.n_active,
        )
        self._round_hist.observe(time.perf_counter() - tic)
        self.ingest_stats.n_timestamps += 1
        self.ingest_stats.n_reports_processed += len(closed.batch)
        self._after_timestep()
        return result

    def _drain_on_close(self, flush_partial: bool = True) -> None:
        ready = (
            self.assembler.flush()
            if flush_partial
            else self.assembler.pop_ready()
        )
        for closed in ready:
            self._process(closed)
        self.ingest_stats.n_late_dropped = self.assembler.n_late_dropped

    def checkpoint(self, path=None) -> None:
        super().checkpoint(path)
        self.ingest_stats.checkpoints_written += 1

    def stats(self) -> dict:
        out = super().stats()
        s = self.ingest_stats
        out["ingest"] = {
            "n_submitted": s.n_submitted,
            "n_late_dropped": s.n_late_dropped,
            "n_reports_processed": s.n_reports_processed,
            "backpressure_waits": s.backpressure_waits,
            "checkpoints_written": s.checkpoints_written,
            "watermark": int(self.assembler.watermark),
            "next_t": int(self.assembler.next_t),
            "backlog": int(self.assembler.backlog),
            "backlog_high_water": int(self.assembler.backlog_high_water),
        }
        return out


def create_session(spec, grid, *, lam: Optional[float] = None) -> CuratorSession:
    """Build the curator session described by ``spec``.

    Parameters
    ----------
    spec:
        A :class:`~repro.api.specs.SessionSpec`.  A flat
        :class:`~repro.core.retrasyn.RetraSynConfig` is accepted for
        compatibility (lifted via ``SessionSpec.from_config``) but
        deprecated here — new callers should compose specs.
    grid:
        The discretisation grid shared with reporting users.
    lam:
        Termination restriction factor λ (Eq. 8); overrides
        ``spec.engine.lam``.  One of the two must be set: a session has no
        dataset to derive it from.

    Engine routing: ``sharding.n_shards > 1`` (or
    ``sharding.shard_executor="distributed"``, which promotes shards to
    socket-framed worker services) selects the hash-sharded collection
    engine, otherwise the unsharded one;
    ``service.transport="ingest"`` wraps the curator in the watermarked
    ingestion assembler, ``"direct"`` in the synchronous façade.
    """
    if not isinstance(spec, SessionSpec):
        warnings.warn(
            "passing a flat config to create_session() is deprecated; "
            "build a SessionSpec (e.g. config.to_spec() or "
            "SessionSpec.from_flat(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = SessionSpec.from_config(spec)
    lam = lam if lam is not None else spec.engine.lam
    if lam is None:
        raise ConfigurationError(
            "create_session() needs the termination factor lambda: set "
            "EngineSpec.lam or pass lam="
        )
    config = spec.to_config()
    if (
        spec.sharding.n_shards > 1
        or spec.sharding.shard_executor == "distributed"
    ):
        curator = ShardedOnlineRetraSyn(grid, config, lam=lam)
    else:
        curator = OnlineRetraSyn(grid, config, lam=lam)
    if spec.service.transport == "ingest":
        return IngestSession(curator, spec)
    return DirectSession(curator, spec)


def load_session(
    path,
    spec: Optional[SessionSpec] = None,
    service: Optional[ServiceSpec] = None,
) -> CuratorSession:
    """Resume the session frozen at ``path`` by :meth:`checkpoint`.

    The v3 checkpoint format stores the session spec; ``spec`` replaces
    it wholesale, while ``service`` replaces only the service layer
    (transport, lateness, cadence, binding) and keeps the stored
    privacy/engine/sharding layers — the right tool when a restarted
    deployment passes fresh service flags but must not misdescribe the
    engine the checkpoint actually restores.  Migrated v2 checkpoints
    fall back to lifting the stored flat config.
    """
    import dataclasses

    from repro.core.persistence import load_checkpoint_with_spec

    if spec is not None and service is not None:
        raise ConfigurationError(
            "pass either a whole spec or a service layer to load_session, "
            "not both"
        )
    curator, stored_spec = load_checkpoint_with_spec(path)
    if spec is None:
        spec = stored_spec
    if spec is None:
        spec = SessionSpec.from_config(curator.config)
    if service is not None:
        spec = dataclasses.replace(spec, service=service)
    if spec.service.transport == "ingest":
        return IngestSession(curator, spec)
    return DirectSession(curator, spec)
