"""`repro serve`: run the curator as an ingestion service over a dataset.

The batch path (`repro run`) hands the curator a finished dataset.  This
module instead *replays* the dataset as a live report stream through the
async ingestion front-end (:mod:`repro.stream.ingest`), which is the shape
of a real deployment: a bounded ingress queue with backpressure,
out-of-order arrival (optional shuffling inside the watermark window),
watermark-based timestamp closing, and periodic checkpoints that a crashed
or restarted service resumes from bit-for-bit.

Programmatic use::

    outcome = serve_dataset(data, ServeSettings(config=cfg, shuffle=True))
    outcome.run.synthetic     # same SynthesisRun a batch run produces
    outcome.stats             # ingestion counters (lateness, backpressure)
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.api.specs import ServiceSpec, cli_field_names
from repro.core.online import OnlineRetraSyn
from repro.core.persistence import checkpoint_exists, load_checkpoint
from repro.core.retrasyn import RetraSynConfig, SynthesisRun
from repro.core.sharded import ShardedOnlineRetraSyn
from repro.geo.trajectory import average_length
from repro.stream.ingest import IngestStats, dataset_reports, ingest_events
from repro.stream.reports import ColumnarStreamView
from repro.stream.stream import StreamDataset

#: ServiceSpec fields mirrored as flat ServeSettings kwargs — derived
#: from the spec's own CLI registry so a new CLI-exposed ServiceSpec
#: field is forwarded automatically instead of relying on someone
#: extending a hand-maintained tuple.  ServeSettings still needs the
#: matching ``Optional`` attribute; the ``spec-flag-drift`` lint rule
#: and ``tests/test_serve_settings.py`` both pin that.
_MIRRORED_SERVICE_FIELDS = cli_field_names(ServiceSpec)


@dataclass
class ServeSettings:
    """Everything `repro serve` needs besides the dataset.

    The deployment shape lives in one place — the ``service``
    :class:`~repro.api.specs.ServiceSpec` layer, where all validation
    also lives.  The flat fields (``queue_size`` … ``ingest_consumers``)
    are constructor conveniences: a non-``None`` value overrides the
    corresponding ``service`` field, and after construction each mirror
    reflects the resolved spec value, so both spellings read the same.
    """

    config: RetraSynConfig = field(default_factory=RetraSynConfig)
    service: Optional[ServiceSpec] = None  # resolved in __post_init__
    queue_size: Optional[int] = None
    max_lateness: Optional[int] = None
    shuffle: bool = False  # permute arrival order inside the lateness window
    shuffle_seed: int = 0
    checkpoint_path: Optional[str] = None
    checkpoint_every: Optional[int] = None  # mid-run cadence (0 = only at end)
    checkpoint_keep: Optional[int] = None  # rotated generations to retain
    drain_deadline: Optional[float] = None  # SIGTERM drain bound (seconds)
    ingest_consumers: Optional[int] = None  # assembler partitions (>=1)
    resume: bool = False  # load checkpoint_path and continue from it

    def __post_init__(self) -> None:
        base = self.service if self.service is not None else ServiceSpec()
        overrides = {
            name: getattr(self, name)
            for name in _MIRRORED_SERVICE_FIELDS
            if getattr(self, name) is not None
        }
        # replace() re-runs ServiceSpec.__post_init__, so validation of
        # the flat overrides happens in the spec layer, once.
        self.service = dataclasses.replace(
            base, transport="ingest", **overrides
        )
        for name in _MIRRORED_SERVICE_FIELDS:
            setattr(self, name, getattr(self.service, name))


@dataclass
class ServeOutcome:
    """What one service run produced."""

    run: SynthesisRun
    stats: IngestStats
    resumed_from_t: Optional[int] = None
    wall_seconds: float = 0.0

    def report_lines(self) -> list[str]:
        s = self.stats
        lines = [
            f"timestamps processed   {s.n_timestamps}",
            f"reports ingested       {s.n_submitted}",
            f"reports processed      {s.n_reports_processed}",
            f"late reports dropped   {s.n_late_dropped}",
            f"backpressure waits     {s.backpressure_waits}",
            f"checkpoints written    {s.checkpoints_written}",
            f"wall seconds           {self.wall_seconds:.3f}",
        ]
        if self.wall_seconds > 0:
            lines.append(
                f"throughput             "
                f"{s.n_reports_processed / self.wall_seconds:,.0f} reports/s"
            )
        if self.resumed_from_t is not None:
            lines.insert(0, f"resumed at t={self.resumed_from_t}")
        return lines


def build_curator(data: StreamDataset, config: RetraSynConfig):
    """The same engine routing `repro run` uses, without running anything."""
    lam = (
        config.lam
        if config.lam is not None
        else max(1.0, average_length(data.trajectories))
    )
    if config.n_shards > 1 or config.shard_executor == "distributed":
        return ShardedOnlineRetraSyn(data.grid, config, lam=lam)
    return OnlineRetraSyn(data.grid, config, lam=lam)


def serve_dataset(data: StreamDataset, settings: ServeSettings) -> ServeOutcome:
    """Replay ``data`` through the ingestion service and package the run."""
    resumed_from_t: Optional[int] = None
    if settings.resume:
        if not settings.checkpoint_path:
            raise ValueError("resume requires a checkpoint_path")
        if not checkpoint_exists(settings.checkpoint_path):
            raise FileNotFoundError(
                f"no checkpoint to resume from: {settings.checkpoint_path}"
            )
        curator = load_checkpoint(settings.checkpoint_path)
        resumed_from_t = curator._last_t + 1
    else:
        curator = build_curator(data, settings.config)

    view = ColumnarStreamView(data, curator.space)
    shuffle_rng = (
        np.random.default_rng(settings.shuffle_seed) if settings.shuffle else None
    )
    reports = dataset_reports(
        view,
        start_t=resumed_from_t or 0,
        shuffle_rng=shuffle_rng,
        block=settings.max_lateness + 1,
    )

    start = time.perf_counter()
    try:
        stats = ingest_events(
            curator,
            reports,
            queue_size=settings.queue_size,
            max_lateness=settings.max_lateness,
            checkpoint_path=settings.checkpoint_path,
            checkpoint_every=settings.checkpoint_every,
            checkpoint_keep=settings.checkpoint_keep,
            ingest_consumers=settings.ingest_consumers,
        )
    finally:
        if isinstance(curator, ShardedOnlineRetraSyn):
            curator.close()
    wall = time.perf_counter() - start

    run = curator.result(
        data.n_timestamps,
        name=f"{curator.config.label}(serve:{data.name})",
        total_runtime=wall,
    )
    return ServeOutcome(
        run=run, stats=stats, resumed_from_t=resumed_from_t, wall_seconds=wall
    )
