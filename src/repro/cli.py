"""Command-line interface.

Usage (after installing the package)::

    python -m repro datasets generate --name tdrive --scale 0.05 --out td.npz
    python -m repro datasets stats td.npz
    python -m repro run --method RetraSyn_p --input td.npz --epsilon 1.0 \
        --w 20 --out syn.npz
    python -m repro evaluate td.npz syn.npz --phi 10
    python -m repro experiment table3 --scale 0.02

Every command is deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.comparison import fidelity_report, format_fidelity_report
from repro.datasets.io import load_stream_dataset, save_stream_dataset
from repro.datasets.registry import available_datasets, load_dataset
from repro.experiments.runner import ExperimentSetting, make_method


def _add_datasets_parser(sub) -> None:
    p = sub.add_parser("datasets", help="generate or inspect datasets")
    inner = p.add_subparsers(dest="datasets_cmd", required=True)

    gen = inner.add_parser("generate", help="generate one of the paper's datasets")
    gen.add_argument("--name", required=True, choices=available_datasets())
    gen.add_argument("--scale", type=float, default=0.05)
    gen.add_argument("--k", type=int, default=6)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output .npz path")

    stats = inner.add_parser("stats", help="print Table I-style statistics")
    stats.add_argument("path", help="dataset .npz path")

    listing = inner.add_parser("list", help="list generatable dataset names")
    del listing  # no extra arguments


def _flag_dest(flag: str) -> str:
    """argparse destination of a ``--flag-name`` (its default derivation)."""
    return flag.lstrip("-").replace("-", "_")


def _add_spec_flag_group(parser, spec_classes=None, defaults=None) -> None:
    """One shared engine/service flag block, generated from the specs.

    Every flag is derived from the ``metadata["cli"]`` entry of a spec
    field in :mod:`repro.api.specs`, so ``repro run`` and ``repro serve``
    expose the *same* block and a new config field cannot silently miss
    (or drift from) its CLI flag.  ``defaults`` overrides per-command
    defaults (e.g. serve prefers the vectorized engine).
    """
    from repro.api.specs import iter_cli_fields

    defaults = defaults or {}
    group = parser.add_argument_group(
        "session configuration (generated from repro.api.specs)"
    )
    kwargs = {"spec_classes": spec_classes} if spec_classes is not None else {}
    for _cls, f in iter_cli_fields(**kwargs):
        meta = f.metadata["cli"]
        default = defaults.get(f.name, f.default)
        if meta["store_true"]:
            group.add_argument(meta["flag"], action="store_true",
                               help=meta["help"])
            continue
        add_kwargs = {"default": default, "help": meta["help"]}
        if meta["choices"] is not None:
            add_kwargs["choices"] = meta["choices"]
        if meta["type"] is not None:
            add_kwargs["type"] = meta["type"]
        group.add_argument(meta["flag"], **add_kwargs)


def _spec_kwargs_from_args(args, spec_classes=None) -> dict:
    """Flat spec-field dict collected from a parsed spec flag group."""
    from repro.api.specs import iter_cli_fields

    kwargs = {"spec_classes": spec_classes} if spec_classes is not None else {}
    return {
        f.name: getattr(args, _flag_dest(f.metadata["cli"]["flag"]))
        for _cls, f in iter_cli_fields(**kwargs)
    }


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="run a synthesis method over a dataset")
    p.add_argument(
        "--method",
        default="RetraSyn_p",
        help="RetraSyn_b/RetraSyn_p/AllUpdate_*/NoEQ_*/LBD/LBA/LPD/LPA",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help="dataset .npz path")
    src.add_argument("--dataset", choices=available_datasets(), help="generate fresh")
    p.add_argument("--scale", type=float, default=0.05, help="with --dataset")
    _add_spec_flag_group(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="synthetic output .npz path")
    p.add_argument("--no-audit", action="store_true",
                   help="skip the privacy-ledger audit (faster)")


def _add_serve_parser(sub) -> None:
    from repro.api.specs import ServiceSpec

    p = sub.add_parser(
        "serve",
        help="replay a dataset through the async ingestion service "
             "(bounded queue, watermarks, checkpoints), or — with --http — "
             "listen for remote repro.api.Client submissions",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help="dataset .npz path")
    src.add_argument("--dataset", choices=available_datasets(), help="generate fresh")
    p.add_argument("--scale", type=float, default=0.05, help="with --dataset")
    p.add_argument("--division", default="population",
                   choices=("population", "budget"),
                   help="privacy division style (run derives this from "
                        "--method; serve takes it directly)")
    _add_spec_flag_group(p, defaults={"engine": "vectorized"})
    _add_spec_flag_group(p, spec_classes=(ServiceSpec,))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shuffle", action="store_true",
                   help="shuffle arrival order inside the lateness window")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint instead of starting fresh")
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   help="serve the versioned HTTP ingress on PORT "
                        "(0 = ephemeral) instead of replaying the dataset; "
                        "drive it with repro.api.Client")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for --http")
    p.add_argument("--out", default=None, help="synthetic output .npz path")
    p.add_argument("--no-audit", action="store_true")


def _add_bench_parser(sub) -> None:
    p = sub.add_parser(
        "bench",
        help="end-to-end load benchmarks (machine-readable artifacts)",
    )
    inner = p.add_subparsers(dest="bench_cmd", required=True)
    serve = inner.add_parser(
        "serve",
        help="saturating load harness over the serve/HTTP ingress: "
             "replays a synthetic population against every boundary "
             "(in-process, HTTP v1/v2, subprocess) and writes "
             "BENCH_serve.json",
    )
    serve.add_argument("--users", type=int, default=100_000,
                       help="synthetic population size (reports per round)")
    serve.add_argument("--horizon", type=int, default=8,
                       help="timestamps replayed (enter + moves + quit)")
    serve.add_argument("--k", type=int, default=6, help="grid granularity")
    serve.add_argument("--epsilon", type=float, default=1.0)
    serve.add_argument("--w", type=int, default=10)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--pipeline", type=int, default=4,
                       help="timestamps per pipelined request (binary frames)")
    serve.add_argument("--ingest-consumers", type=int, default=1)
    serve.add_argument("--modes", default="inproc,http,subprocess",
                       help="comma-separated subset of inproc,http,subprocess")
    serve.add_argument("--quick", action="store_true",
                       help="CI smoke scale: caps users/horizon "
                            "(small populations, no speedup gate)")
    serve.add_argument("--out", default="BENCH_serve.json",
                       help="artifact path (JSON)")
    serve.add_argument("--profile", default=None, metavar="PATH",
                       help="profile the benchmark under cProfile: pstats "
                            "dump at PATH plus a top-20 cumulative text "
                            "summary at PATH.txt")

    dist = inner.add_parser(
        "distributed",
        help="collection-round throughput of the shard executors "
             "(serial / in-process pool / socket-framed worker "
             "processes) plus thread-vs-process synthesis scaling; "
             "writes BENCH_distributed.json",
    )
    dist.add_argument("--users", type=int, default=100_000,
                      help="synthetic population size (reports per round)")
    dist.add_argument("--horizon", type=int, default=8,
                      help="timestamps replayed (enter + moves + quit)")
    dist.add_argument("--k", type=int, default=6, help="grid granularity")
    dist.add_argument("--epsilon", type=float, default=1.0)
    dist.add_argument("--w", type=int, default=10)
    dist.add_argument("--seed", type=int, default=0)
    dist.add_argument("--shards", default="1,4",
                      help="comma-separated shard counts to sweep")
    dist.add_argument("--synthesis-shards", type=int, default=4,
                      help="slab count for the synthesis executor sweep")
    dist.add_argument("--round-batches", default="1,4,8",
                      help="comma-separated pipelining depths swept by the "
                           "fused-round benchmark (1 always included)")
    dist.add_argument("--quick", action="store_true",
                      help="CI smoke scale: caps users/horizon "
                           "(speedup gate becomes report-only)")
    dist.add_argument("--out", default="BENCH_distributed.json",
                      help="artifact path (JSON)")
    dist.add_argument("--profile", default=None, metavar="PATH",
                      help="profile the benchmark under cProfile: pstats "
                           "dump at PATH plus a top-20 cumulative text "
                           "summary at PATH.txt")


def _add_evaluate_parser(sub) -> None:
    p = sub.add_parser("evaluate", help="score a synthetic DB against the real one")
    p.add_argument("real", help="real dataset .npz")
    p.add_argument("synthetic", help="synthetic dataset .npz")
    p.add_argument("--phi", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)


def _add_experiment_parser(sub) -> None:
    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument(
        "artifact",
        choices=(
            "table3", "table4", "table5",
            "fig3", "fig4", "fig5", "fig6", "fig7",
            "historical",
        ),
    )
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--w", type=int, default=10)
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--datasets", nargs="+", default=None)


def _add_lint_parser(sub) -> None:
    from repro.analysis.lint.cli import add_lint_parser

    add_lint_parser(sub)


def _add_plan_parser(sub) -> None:
    p = sub.add_parser(
        "plan", help="predict noise/SNR for a deployment configuration"
    )
    p.add_argument("--epsilon", type=float, default=1.0)
    p.add_argument("--w", type=int, default=20)
    p.add_argument("--n-active", type=int, default=10_000)
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--division", choices=("population", "budget"),
                   default="population")
    p.add_argument("--portion", type=float, default=0.05)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RetraSyn: LDP real-time trajectory synthesis (ICDE 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_datasets_parser(sub)
    _add_run_parser(sub)
    _add_serve_parser(sub)
    _add_bench_parser(sub)
    _add_evaluate_parser(sub)
    _add_experiment_parser(sub)
    _add_plan_parser(sub)
    _add_lint_parser(sub)
    return parser


# ---------------------------------------------------------------------- #
# command implementations
# ---------------------------------------------------------------------- #
def _cmd_datasets(args) -> int:
    if args.datasets_cmd == "list":
        for name in available_datasets():
            print(name)
        return 0
    if args.datasets_cmd == "generate":
        data = load_dataset(args.name, scale=args.scale, k=args.k, seed=args.seed)
        save_stream_dataset(data, args.out)
        print(f"wrote {args.out}: {data.stats()}")
        return 0
    if args.datasets_cmd == "stats":
        data = load_stream_dataset(args.path)
        for key, value in data.stats().items():
            print(f"{key:16s} {value}")
        return 0
    return 2


def _cmd_run(args) -> int:
    if args.input:
        data = load_stream_dataset(args.input)
    else:
        data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    flat = _spec_kwargs_from_args(args)
    epsilon, w = flat.pop("epsilon"), flat.pop("w")
    allocator = flat.pop("allocator")
    overrides = {"track_privacy": not args.no_audit}
    if args.method.lower() not in ("lbd", "lba", "lpd", "lpa"):
        # Baselines take only the shared privacy knobs; engine-layer flags
        # apply to the RetraSyn variants.
        overrides.update(flat)
    algo = make_method(
        args.method,
        epsilon=epsilon,
        w=w,
        seed=args.seed,
        allocator=allocator,
        **overrides,
    )
    run = algo.run(data)
    save_stream_dataset(run.synthetic, args.out)
    print(f"wrote {args.out}: {run.synthetic.stats()}")
    return _audit_exit_code(run)


def _cmd_serve(args) -> int:
    from repro.api.specs import ServiceSpec, SessionSpec
    from repro.serve import ServeSettings, serve_dataset

    if args.input:
        data = load_stream_dataset(args.input)
    else:
        data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    service = _spec_kwargs_from_args(args, spec_classes=(ServiceSpec,))
    spec = SessionSpec.from_flat(
        **_spec_kwargs_from_args(args),
        **service,
        division=args.division,
        track_privacy=not args.no_audit,
        seed=args.seed,
        transport="ingest",
    )
    if args.http is not None:
        return _serve_http(args, data, spec)
    settings = ServeSettings(
        config=spec.to_config(),
        service=spec.service,
        shuffle=args.shuffle,
        shuffle_seed=args.seed,
        resume=args.resume,
    )
    outcome = serve_dataset(data, settings)
    for line in outcome.report_lines():
        print(line)
    if args.out:
        save_stream_dataset(outcome.run.synthetic, args.out)
        print(f"wrote {args.out}: {outcome.run.synthetic.stats()}")
    return _audit_exit_code(outcome.run)


def _serve_http(args, data, spec) -> int:
    """`repro serve --http PORT`: the network ingress in front of a session.

    The dataset supplies the grid geometry and the λ estimate; the stream
    itself comes from remote :class:`repro.api.Client` submissions.  Runs
    until a client posts ``/v1/shutdown``, then reports and (optionally)
    writes the synthetic output.
    """
    import dataclasses

    from repro.api import schema
    from repro.api.http import serve_http
    from repro.api.session import create_session, load_session
    from repro.core.persistence import checkpoint_exists
    from repro.geo.trajectory import average_length

    spec = dataclasses.replace(
        spec,
        service=dataclasses.replace(
            spec.service, http_host=args.host, http_port=args.http
        ),
    )
    lam = spec.engine.lam or max(1.0, average_length(data.trajectories))
    if args.resume:
        if not spec.service.checkpoint_path:
            raise ValueError("--resume requires --checkpoint")
        if not checkpoint_exists(spec.service.checkpoint_path):
            raise FileNotFoundError(
                f"no checkpoint to resume from: {spec.service.checkpoint_path}"
            )
        # Engine + privacy layers come from the checkpoint's stored spec
        # (the flags of *this* invocation may be defaults that misdescribe
        # the restored engine); only the service shape — lateness,
        # cadence, binding — follows the current flags.
        session = load_session(
            spec.service.checkpoint_path, service=spec.service
        )
        last_t = session.curator._last_t
        print(f"resumed at t={0 if last_t is None else last_t + 1}", flush=True)
    else:
        session = create_session(spec, data.grid, lam=lam)
    ingress = serve_http(
        session,
        host=spec.service.http_host,
        port=spec.service.http_port,
        on_ready=lambda s: print(
            f"listening on http://{s.host}:{s.port} "
            f"(schema v{schema.SCHEMA_VERSION}, binary frames + JSON v1); "
            f"POST /v1/shutdown to stop", flush=True,
        ),
    )
    session = ingress.session
    run = session.result(name=f"{session.curator.config.label}(http:{data.name})")
    stats = session.stats()
    print(f"timestamps processed   {stats['n_timestamps']}")
    if "ingest" in stats:
        print(f"reports ingested       {stats['ingest']['n_submitted']}")
        print(f"late reports dropped   {stats['ingest']['n_late_dropped']}")
    if args.out:
        save_stream_dataset(run.synthetic, args.out)
        print(f"wrote {args.out}: {run.synthetic.stats()}")
    return _audit_exit_code(run)


def _audit_exit_code(run) -> int:
    """Shared privacy-audit epilogue of run/serve."""
    if run.accountant is not None:
        summary = run.accountant.summary()
        print(f"privacy audit: {summary}")
        if not summary["satisfied"]:
            print("ERROR: w-event LDP guarantee violated", file=sys.stderr)
            return 1
    return 0


def _profiled(profile_path, fn, /, *fn_args, **fn_kwargs):
    """Run ``fn`` (optionally) under cProfile.

    With a path: dumps the raw pstats file there and writes a top-20
    cumulative-time text summary next to it (``PATH.txt``), so the
    benchmark artifact always travels with a readable hot-spot digest.
    """
    if not profile_path:
        return fn(*fn_args, **fn_kwargs)
    import cProfile
    import io
    import pstats
    from pathlib import Path

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn, *fn_args, **fn_kwargs)
    finally:
        out = Path(profile_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(out)
        text = io.StringIO()
        stats = pstats.Stats(profiler, stream=text)
        stats.sort_stats("cumulative").print_stats(20)
        out.with_name(out.name + ".txt").write_text(text.getvalue())
        print(f"wrote profile {out} (+ {out.name}.txt)")


def _cmd_bench(args) -> int:
    import json
    from pathlib import Path

    if args.bench_cmd == "distributed":
        from repro.bench.distributed import (
            format_bench_distributed,
            run_bench_distributed,
        )

        shard_counts = tuple(
            int(s) for s in args.shards.split(",") if s.strip()
        )
        round_batches = tuple(
            int(d) for d in args.round_batches.split(",") if d.strip()
        )
        payload = _profiled(
            args.profile,
            run_bench_distributed,
            n_users=args.users,
            horizon=args.horizon,
            k=args.k,
            epsilon=args.epsilon,
            w=args.w,
            seed=args.seed,
            shard_counts=shard_counts,
            synthesis_shards=args.synthesis_shards,
            round_batches=round_batches,
            quick=args.quick,
        )
        formatted = format_bench_distributed(payload)
        # Bit-identity is a hard gate everywhere; the speedup gates only
        # bind when the payload says they were enforced (multi-core, full
        # scale) — single-core CI records the ratios without failing.
        ok = (
            payload["bit_identical"]
            and payload["synthesis"]["bit_identical"]
            and payload["pipeline"]["bit_identical"]
        )
        if payload["gate"]["enforced"]:
            ok = ok and payload["gate"]["passed"]
        if payload["pipeline"]["gate"]["enforced"]:
            ok = ok and payload["pipeline"]["gate"]["passed"]
    else:
        from repro.bench.load import format_bench_serve, run_bench_serve

        modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
        payload = _profiled(
            args.profile,
            run_bench_serve,
            n_users=args.users,
            horizon=args.horizon,
            k=args.k,
            epsilon=args.epsilon,
            w=args.w,
            seed=args.seed,
            pipeline=args.pipeline,
            ingest_consumers=args.ingest_consumers,
            modes=modes,
            quick=args.quick,
        )
        formatted = format_bench_serve(payload)
        ok = payload["remote_bit_identical"]
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for line in formatted:
        print(line)
    print(f"wrote {out}")
    return 0 if ok else 1


def _cmd_evaluate(args) -> int:
    real = load_stream_dataset(args.real)
    syn = load_stream_dataset(args.synthetic)
    report = fidelity_report(real, syn, phi=args.phi, rng=args.seed)
    print(format_fidelity_report(report))
    return 0


def _cmd_experiment(args) -> int:
    setting = ExperimentSetting(
        scale=args.scale, w=args.w, k=args.k, seed=args.seed
    )
    datasets = tuple(args.datasets) if args.datasets else None
    if args.artifact == "table3":
        from repro.experiments.table3 import format_table3, run_table3

        print(format_table3(run_table3(setting, datasets=datasets)))
    elif args.artifact == "table4":
        from repro.experiments.table4 import format_table4, run_table4

        print(format_table4(run_table4(setting, datasets=datasets)))
    elif args.artifact == "table5":
        from repro.experiments.table5 import format_table5, run_table5

        print(format_table5(run_table5(setting, datasets=datasets)))
    elif args.artifact == "fig3":
        from repro.experiments.fig3 import format_fig3, run_fig3

        print(format_fig3(run_fig3(setting, datasets=datasets or ("tdrive", "oldenburg"))))
    elif args.artifact == "fig4":
        from repro.experiments.fig4 import format_fig4, run_fig4

        print(format_fig4(run_fig4(setting, datasets=datasets or ("tdrive", "oldenburg"))))
    elif args.artifact == "fig5":
        from repro.experiments.fig5 import format_fig5, run_fig5

        print(format_fig5(run_fig5(setting, datasets=datasets or ("tdrive", "oldenburg"))))
    elif args.artifact == "fig6":
        from repro.experiments.fig6 import format_fig6, run_fig6

        print(format_fig6(run_fig6(setting, datasets=datasets)))
    elif args.artifact == "fig7":
        from repro.experiments.fig7 import format_fig7, run_fig7

        print(format_fig7(run_fig7(setting, datasets=datasets)))
    elif args.artifact == "historical":
        from repro.experiments.historical import format_historical, run_historical

        print(format_historical(run_historical(setting, datasets=datasets or ("tdrive",))))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint.cli import run_lint_cli

    return run_lint_cli(args)


def _cmd_plan(args) -> int:
    from repro.planning import DeploymentPlan, format_plan_report, plan_report

    plan = DeploymentPlan(
        epsilon=args.epsilon,
        w=args.w,
        n_active=args.n_active,
        k=args.k,
        division=args.division,
        portion=args.portion,
    )
    print(format_plan_report(plan_report(plan)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
        "plan": _cmd_plan,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
