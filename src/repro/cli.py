"""Command-line interface.

Usage (after installing the package)::

    python -m repro datasets generate --name tdrive --scale 0.05 --out td.npz
    python -m repro datasets stats td.npz
    python -m repro run --method RetraSyn_p --input td.npz --epsilon 1.0 \
        --w 20 --out syn.npz
    python -m repro evaluate td.npz syn.npz --phi 10
    python -m repro experiment table3 --scale 0.02

Every command is deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.comparison import fidelity_report, format_fidelity_report
from repro.datasets.io import load_stream_dataset, save_stream_dataset
from repro.datasets.registry import available_datasets, load_dataset
from repro.experiments.runner import ExperimentSetting, make_method


def _add_datasets_parser(sub) -> None:
    p = sub.add_parser("datasets", help="generate or inspect datasets")
    inner = p.add_subparsers(dest="datasets_cmd", required=True)

    gen = inner.add_parser("generate", help="generate one of the paper's datasets")
    gen.add_argument("--name", required=True, choices=available_datasets())
    gen.add_argument("--scale", type=float, default=0.05)
    gen.add_argument("--k", type=int, default=6)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output .npz path")

    stats = inner.add_parser("stats", help="print Table I-style statistics")
    stats.add_argument("path", help="dataset .npz path")

    listing = inner.add_parser("list", help="list generatable dataset names")
    del listing  # no extra arguments


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="run a synthesis method over a dataset")
    p.add_argument(
        "--method",
        default="RetraSyn_p",
        help="RetraSyn_b/RetraSyn_p/AllUpdate_*/NoEQ_*/LBD/LBA/LPD/LPA",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help="dataset .npz path")
    src.add_argument("--dataset", choices=available_datasets(), help="generate fresh")
    p.add_argument("--scale", type=float, default=0.05, help="with --dataset")
    p.add_argument("--epsilon", type=float, default=1.0)
    p.add_argument("--w", type=int, default=20)
    p.add_argument("--allocator", default="adaptive",
                   choices=("adaptive", "uniform", "sample", "random"))
    p.add_argument("--engine", default="object",
                   choices=("object", "vectorized"),
                   help="synthesis engine (RetraSyn variants only)")
    p.add_argument("--compile-mode", default="incremental",
                   choices=("incremental", "full", "full-loop"),
                   help="vectorized-engine model compilation: dirty-row "
                        "recompile, vectorized full rebuild, or the "
                        "per-cell reference loop")
    p.add_argument("--synthesis-shards", type=int, default=1,
                   help="thread slabs advancing live synthetic streams in "
                        "parallel (vectorized engine only)")
    p.add_argument("--shards", type=int, default=1,
                   help="collection shards; >1 enables the sharded engine "
                        "(RetraSyn variants only)")
    p.add_argument("--shard-executor", default="serial",
                   choices=("serial", "process"),
                   help="run shards in-process or one worker process each")
    p.add_argument("--oracle-mode", default="fast",
                   choices=("fast", "exact", "exact-loop"),
                   help="OUE execution: binomial shortcut, batched literal "
                        "protocol, or per-user reference loop")
    p.add_argument("--dmu-prefilter", action="store_true",
                   help="shard-local never-observed DMU candidate pruning")
    p.add_argument("--accountant-mode", default="columnar",
                   choices=("columnar", "object"),
                   help="privacy-ledger engine: vectorized ring-buffer "
                        "ledger or the per-uid dict reference")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="synthetic output .npz path")
    p.add_argument("--no-audit", action="store_true",
                   help="skip the privacy-ledger audit (faster)")


def _add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="replay a dataset through the async ingestion service "
             "(bounded queue, watermarks, checkpoints)",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help="dataset .npz path")
    src.add_argument("--dataset", choices=available_datasets(), help="generate fresh")
    p.add_argument("--scale", type=float, default=0.05, help="with --dataset")
    p.add_argument("--epsilon", type=float, default=1.0)
    p.add_argument("--w", type=int, default=20)
    p.add_argument("--allocator", default="adaptive",
                   choices=("adaptive", "uniform", "sample", "random"))
    p.add_argument("--engine", default="vectorized",
                   choices=("object", "vectorized"))
    p.add_argument("--compile-mode", default="incremental",
                   choices=("incremental", "full", "full-loop"),
                   help="vectorized-engine model compilation (see `repro run`)")
    p.add_argument("--synthesis-shards", type=int, default=1,
                   help="thread slabs for parallel stream generation")
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--shard-executor", default="serial",
                   choices=("serial", "process"))
    p.add_argument("--oracle-mode", default="fast",
                   choices=("fast", "exact", "exact-loop"))
    p.add_argument("--dmu-prefilter", action="store_true",
                   help="shard-local never-observed DMU candidate pruning")
    p.add_argument("--accountant-mode", default="columnar",
                   choices=("columnar", "object"),
                   help="privacy-ledger engine (see `repro run`)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--queue-size", type=int, default=10_000,
                   help="ingress queue bound (backpressure threshold)")
    p.add_argument("--lateness", type=int, default=0,
                   help="watermark slack: timestamps a report may trail")
    p.add_argument("--shuffle", action="store_true",
                   help="shuffle arrival order inside the lateness window")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint file to write (and resume from)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="timestamps between checkpoints (0 = only at end)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint instead of starting fresh")
    p.add_argument("--out", default=None, help="synthetic output .npz path")
    p.add_argument("--no-audit", action="store_true")


def _add_evaluate_parser(sub) -> None:
    p = sub.add_parser("evaluate", help="score a synthetic DB against the real one")
    p.add_argument("real", help="real dataset .npz")
    p.add_argument("synthetic", help="synthetic dataset .npz")
    p.add_argument("--phi", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)


def _add_experiment_parser(sub) -> None:
    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument(
        "artifact",
        choices=(
            "table3", "table4", "table5",
            "fig3", "fig4", "fig5", "fig6", "fig7",
            "historical",
        ),
    )
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--w", type=int, default=10)
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--datasets", nargs="+", default=None)


def _add_plan_parser(sub) -> None:
    p = sub.add_parser(
        "plan", help="predict noise/SNR for a deployment configuration"
    )
    p.add_argument("--epsilon", type=float, default=1.0)
    p.add_argument("--w", type=int, default=20)
    p.add_argument("--n-active", type=int, default=10_000)
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--division", choices=("population", "budget"),
                   default="population")
    p.add_argument("--portion", type=float, default=0.05)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RetraSyn: LDP real-time trajectory synthesis (ICDE 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_datasets_parser(sub)
    _add_run_parser(sub)
    _add_serve_parser(sub)
    _add_evaluate_parser(sub)
    _add_experiment_parser(sub)
    _add_plan_parser(sub)
    return parser


# ---------------------------------------------------------------------- #
# command implementations
# ---------------------------------------------------------------------- #
def _cmd_datasets(args) -> int:
    if args.datasets_cmd == "list":
        for name in available_datasets():
            print(name)
        return 0
    if args.datasets_cmd == "generate":
        data = load_dataset(args.name, scale=args.scale, k=args.k, seed=args.seed)
        save_stream_dataset(data, args.out)
        print(f"wrote {args.out}: {data.stats()}")
        return 0
    if args.datasets_cmd == "stats":
        data = load_stream_dataset(args.path)
        for key, value in data.stats().items():
            print(f"{key:16s} {value}")
        return 0
    return 2


def _cmd_run(args) -> int:
    if args.input:
        data = load_stream_dataset(args.input)
    else:
        data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    overrides = {"track_privacy": not args.no_audit}
    if args.method.lower() not in ("lbd", "lba", "lpd", "lpa"):
        overrides["engine"] = args.engine
        overrides["compile_mode"] = args.compile_mode
        overrides["synthesis_shards"] = args.synthesis_shards
        overrides["n_shards"] = args.shards
        overrides["shard_executor"] = args.shard_executor
        overrides["oracle_mode"] = args.oracle_mode
        overrides["dmu_prefilter"] = args.dmu_prefilter
        overrides["accountant_mode"] = args.accountant_mode
    algo = make_method(
        args.method,
        epsilon=args.epsilon,
        w=args.w,
        seed=args.seed,
        allocator=args.allocator,
        **overrides,
    )
    run = algo.run(data)
    save_stream_dataset(run.synthetic, args.out)
    print(f"wrote {args.out}: {run.synthetic.stats()}")
    if run.accountant is not None:
        summary = run.accountant.summary()
        print(f"privacy audit: {summary}")
        if not summary["satisfied"]:
            print("ERROR: w-event LDP guarantee violated", file=sys.stderr)
            return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.core.retrasyn import RetraSynConfig
    from repro.serve import ServeSettings, serve_dataset

    if args.input:
        data = load_stream_dataset(args.input)
    else:
        data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    cfg = RetraSynConfig(
        epsilon=args.epsilon,
        w=args.w,
        allocator=args.allocator,
        engine=args.engine,
        compile_mode=args.compile_mode,
        synthesis_shards=args.synthesis_shards,
        n_shards=args.shards,
        shard_executor=args.shard_executor,
        oracle_mode=args.oracle_mode,
        dmu_prefilter=args.dmu_prefilter,
        accountant_mode=args.accountant_mode,
        track_privacy=not args.no_audit,
        seed=args.seed,
    )
    settings = ServeSettings(
        config=cfg,
        queue_size=args.queue_size,
        max_lateness=args.lateness,
        shuffle=args.shuffle,
        shuffle_seed=args.seed,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    outcome = serve_dataset(data, settings)
    for line in outcome.report_lines():
        print(line)
    if args.out:
        save_stream_dataset(outcome.run.synthetic, args.out)
        print(f"wrote {args.out}: {outcome.run.synthetic.stats()}")
    if outcome.run.accountant is not None:
        summary = outcome.run.accountant.summary()
        print(f"privacy audit: {summary}")
        if not summary["satisfied"]:
            print("ERROR: w-event LDP guarantee violated", file=sys.stderr)
            return 1
    return 0


def _cmd_evaluate(args) -> int:
    real = load_stream_dataset(args.real)
    syn = load_stream_dataset(args.synthetic)
    report = fidelity_report(real, syn, phi=args.phi, rng=args.seed)
    print(format_fidelity_report(report))
    return 0


def _cmd_experiment(args) -> int:
    setting = ExperimentSetting(
        scale=args.scale, w=args.w, k=args.k, seed=args.seed
    )
    datasets = tuple(args.datasets) if args.datasets else None
    if args.artifact == "table3":
        from repro.experiments.table3 import format_table3, run_table3

        print(format_table3(run_table3(setting, datasets=datasets)))
    elif args.artifact == "table4":
        from repro.experiments.table4 import format_table4, run_table4

        print(format_table4(run_table4(setting, datasets=datasets)))
    elif args.artifact == "table5":
        from repro.experiments.table5 import format_table5, run_table5

        print(format_table5(run_table5(setting, datasets=datasets)))
    elif args.artifact == "fig3":
        from repro.experiments.fig3 import format_fig3, run_fig3

        print(format_fig3(run_fig3(setting, datasets=datasets or ("tdrive", "oldenburg"))))
    elif args.artifact == "fig4":
        from repro.experiments.fig4 import format_fig4, run_fig4

        print(format_fig4(run_fig4(setting, datasets=datasets or ("tdrive", "oldenburg"))))
    elif args.artifact == "fig5":
        from repro.experiments.fig5 import format_fig5, run_fig5

        print(format_fig5(run_fig5(setting, datasets=datasets or ("tdrive", "oldenburg"))))
    elif args.artifact == "fig6":
        from repro.experiments.fig6 import format_fig6, run_fig6

        print(format_fig6(run_fig6(setting, datasets=datasets)))
    elif args.artifact == "fig7":
        from repro.experiments.fig7 import format_fig7, run_fig7

        print(format_fig7(run_fig7(setting, datasets=datasets)))
    elif args.artifact == "historical":
        from repro.experiments.historical import format_historical, run_historical

        print(format_historical(run_historical(setting, datasets=datasets or ("tdrive",))))
    return 0


def _cmd_plan(args) -> int:
    from repro.planning import DeploymentPlan, format_plan_report, plan_report

    plan = DeploymentPlan(
        epsilon=args.epsilon,
        w=args.w,
        n_active=args.n_active,
        k=args.k,
        division=args.division,
        portion=args.portion,
    )
    print(format_plan_report(plan_report(plan)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
        "plan": _cmd_plan,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
